//! Ablation — the paper's greedy provisioning heuristics vs exact
//! optimizers: utility gap of the storage rental and VM configuration
//! solutions across random demand profiles and budgets.

use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters, PAPER_VM_BANDWIDTH};
use cloudmedia_cloud::scheduler::ChunkKey;
use cloudmedia_core::provisioning::storage::{ChunkDemand, StorageProblem};
use cloudmedia_core::provisioning::vm::VmProblem;

fn demands(seed: &mut u64, n: usize, scale: f64) -> Vec<ChunkDemand> {
    (0..n)
        .map(|i| {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            ChunkDemand {
                key: ChunkKey {
                    channel: 0,
                    chunk: i,
                },
                demand: (*seed % 1000) as f64 / 1000.0 * scale,
            }
        })
        .collect()
}

fn main() {
    let nfs = paper_nfs_clusters();
    let vms = paper_virtual_clusters();
    let mut seed = 0xD15EA5Eu64;
    println!("problem,budget,greedy_utility,exact_utility,gap_percent");
    for trial in 0..8 {
        let d = demands(&mut seed, 40, 2.0 * PAPER_VM_BANDWIDTH);
        let budget = 20.0 + trial as f64 * 10.0;
        let p = VmProblem {
            demands: &d,
            clusters: &vms,
            budget_per_hour: budget,
        };
        if let (Ok(g), Ok(e)) = (p.greedy(), p.exact()) {
            let gap = (e.total_utility - g.total_utility) / e.total_utility * 100.0;
            println!(
                "vm,{budget},{:.2},{:.2},{:.1}",
                g.total_utility, e.total_utility, gap
            );
        }
        let sd = demands(&mut seed, 40, 10.0);
        let sbudget = 0.001 + trial as f64 * 0.002;
        let sp = StorageProblem {
            demands: &sd,
            clusters: &nfs,
            chunk_bytes: 15_000_000,
            budget_per_hour: sbudget,
        };
        if let (Ok(g), Ok(e)) = (sp.greedy(), sp.exact()) {
            let gap = (e.total_utility - g.total_utility) / e.total_utility * 100.0;
            println!(
                "storage,{sbudget},{:.2},{:.2},{:.1}",
                g.total_utility, e.total_utility, gap
            );
        }
    }
}
