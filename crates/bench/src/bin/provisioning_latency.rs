//! Sec. VI-C — VM provisioning latency: time until a requested fleet is
//! fully running / fully off, demonstrating parallel 25 s boots.

use cloudmedia_bench::latency;

fn main() {
    let rows = latency::measure(&[1, 5, 10, 25, 50, 75, 100, 150], 1.0);
    print!("{}", latency::csv(&rows));
}
