//! Ablation — retrieval-time guarantee: the paper's mean-sojourn
//! criterion vs the tail-aware quantile extension (`P(S > T0) <= eps`).
//! Reports simulated quality and VM cost for each target.

use cloudmedia_bench::HarnessArgs;
use cloudmedia_core::analysis::ProvisioningTarget;
use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;

fn main() {
    let args = HarnessArgs::parse();
    println!("target,mode,mean_quality,mean_vm_cost_per_hour,mean_reserved_mbps");
    for (name, target) in [
        ("mean_sojourn", ProvisioningTarget::MeanSojourn),
        ("p95", ProvisioningTarget::SojournQuantile { epsilon: 0.05 }),
        ("p99", ProvisioningTarget::SojournQuantile { epsilon: 0.01 }),
    ] {
        for mode in [SimMode::ClientServer, SimMode::P2p] {
            let mut cfg = SimConfig::paper_default(mode);
            cfg.trace.horizon_seconds = args.hours * 3600.0;
            cfg.provisioning_target = target;
            let m = Simulator::new(cfg)
                .expect("config is valid")
                .run()
                .expect("run succeeds");
            println!(
                "{name},{mode:?},{:.4},{:.2},{:.1}",
                m.mean_quality(),
                m.mean_vm_hourly_cost(),
                m.mean_reserved_bandwidth() * 8.0 / 1e6,
            );
        }
    }
}
