//! Ablation — demand predictor: the paper's last-interval predictor vs
//! moving-average and EWMA extensions ("more accurate prediction methods
//! ... can be applied", Sec. V-B).

use cloudmedia_bench::HarnessArgs;
use cloudmedia_core::predictor::PredictorKind;
use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;

fn main() {
    let args = HarnessArgs::parse();
    println!("predictor,mode,mean_quality,mean_vm_cost_per_hour,mean_reserved_mbps");
    for (name, kind) in [
        ("last_interval", PredictorKind::LastInterval),
        (
            "moving_average_3",
            PredictorKind::MovingAverage { window: 3 },
        ),
        ("ewma_0.5", PredictorKind::Ewma { weight: 0.5 }),
    ] {
        for mode in [SimMode::ClientServer, SimMode::P2p] {
            let mut cfg = SimConfig::paper_default(mode);
            cfg.trace.horizon_seconds = args.hours * 3600.0;
            cfg.predictor = kind;
            let m = Simulator::new(cfg)
                .expect("config is valid")
                .run()
                .expect("run succeeds");
            println!(
                "{name},{mode:?},{:.4},{:.2},{:.1}",
                m.mean_quality(),
                m.mean_vm_hourly_cost(),
                m.mean_reserved_bandwidth() * 8.0 / 1e6,
            );
        }
    }
}
