//! Fig. 7 — cloud capacity provisioned vs channel size, both modes
//! (C/S linear, P2P sub-linear), one day of controller decisions.

use cloudmedia_bench::{paper_runs, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let runs = paper_runs(args.hours);
    let day = if args.hours >= 48.0 { 1 } else { 0 };
    print!("{}", cloudmedia_bench::report::fig7(&runs, day));
}
