//! Fig. 9 — evolution of aggregate VM utility in 4 representative
//! channels (average sizes 60/100/200/600), P2P mode, 24 hours.

use cloudmedia_bench::four_channel;
use cloudmedia_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    let m = four_channel::run(args.hours.min(24.0));
    print!("{}", four_channel::fig9_csv(&m));
}
