//! Simulation-level multi-region experiment (paper's future work,
//! end-to-end version of `ext_multi_region`).
//!
//! The geo deployment runs one full system simulation per region — each
//! with its population share and its diurnal pattern shifted to local
//! time — and sums cost; the central deployment runs a single simulation
//! whose arrival profile is the *mixture* of the shifted patterns
//! (time-zone multiplexing). Both therefore serve the exact same global
//! demand through the real provisioning loop.

use cloudmedia_core::geo::{three_sites, RegionSpec};
use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::metrics::Metrics;
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::diurnal::DiurnalPattern;

/// Outcome of the two deployments.
#[derive(Debug, Clone)]
pub struct GeoSimResult {
    /// Per-region metrics of the geo deployment, in region order.
    pub per_region: Vec<(RegionSpec, Metrics)>,
    /// Metrics of the centralized deployment.
    pub central: Metrics,
}

impl GeoSimResult {
    /// Total VM cost of the geo deployment, dollars.
    pub fn geo_vm_cost(&self) -> f64 {
        self.per_region.iter().map(|(_, m)| m.total_vm_cost).sum()
    }

    /// Viewer-weighted mean quality of the geo deployment.
    pub fn geo_quality(&self) -> f64 {
        let mut q = 0.0;
        let mut w = 0.0;
        for (r, m) in &self.per_region {
            q += r.population_share * m.mean_quality();
            w += r.population_share;
        }
        q / w
    }
}

/// Runs both deployments over `hours` hours in `mode`, scaling the paper
/// catalog by each region's population share (all simulations run in
/// parallel).
///
/// # Panics
///
/// Panics if a simulation fails.
pub fn run(mode: SimMode, hours: f64) -> GeoSimResult {
    let regions = three_sites();
    let base = SimConfig::paper_default(mode);
    let diurnal = base.trace.diurnal.clone();

    let region_cfg = |r: &RegionSpec| -> SimConfig {
        let mut cfg = base.clone();
        cfg.catalog = cfg.catalog.scaled(r.population_share);
        cfg.trace.horizon_seconds = hours * 3600.0;
        cfg.trace.diurnal = diurnal.shifted(r.timezone_offset_hours);
        // Distinct seed per region so the swarms are independent.
        cfg.trace.seed ^= (r.timezone_offset_hours as u64 + 1).wrapping_mul(0x9E37_79B9);
        cfg
    };
    let central_cfg = {
        let mut cfg = base.clone();
        cfg.trace.horizon_seconds = hours * 3600.0;
        let parts: Vec<(f64, DiurnalPattern)> = regions
            .iter()
            .map(|r| (r.population_share, diurnal.shifted(r.timezone_offset_hours)))
            .collect();
        cfg.trace.diurnal = DiurnalPattern::mixture(&parts).expect("region shares are positive");
        cfg
    };

    std::thread::scope(|s| {
        let region_handles: Vec<_> = regions
            .iter()
            .map(|r| {
                let cfg = region_cfg(r);
                s.spawn(move || {
                    Simulator::new(cfg)
                        .expect("region config valid")
                        .run()
                        .expect("region run")
                })
            })
            .collect();
        let central_handle = s.spawn(move || {
            Simulator::new(central_cfg)
                .expect("central config valid")
                .run()
                .expect("central run")
        });
        let per_region = regions
            .iter()
            .cloned()
            .zip(
                region_handles
                    .into_iter()
                    .map(|h| h.join().expect("region thread")),
            )
            .collect();
        let central = central_handle.join().expect("central thread");
        GeoSimResult {
            per_region,
            central,
        }
    })
}

/// CSV summary of the comparison.
pub fn csv(result: &GeoSimResult) -> String {
    let mut out =
        String::from("deployment,mean_quality,total_vm_cost,mean_reserved_mbps,peak_peers\n");
    for (r, m) in &result.per_region {
        out.push_str(&format!(
            "geo_{},{:.4},{:.2},{:.1},{}\n",
            r.name,
            m.mean_quality(),
            m.total_vm_cost,
            m.mean_reserved_bandwidth() * 8.0 / 1e6,
            m.peak_peers(),
        ));
    }
    out.push_str(&format!(
        "geo_total,{:.4},{:.2},,\n",
        result.geo_quality(),
        result.geo_vm_cost(),
    ));
    out.push_str(&format!(
        "central,{:.4},{:.2},{:.1},{}\n",
        result.central.mean_quality(),
        result.central.total_vm_cost,
        result.central.mean_reserved_bandwidth() * 8.0 / 1e6,
        result.central.peak_peers(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_deployments_serve_the_same_demand_well() {
        let r = run(SimMode::ClientServer, 4.0);
        assert_eq!(r.per_region.len(), 3);
        assert!(r.geo_quality() > 0.9, "geo quality {}", r.geo_quality());
        assert!(r.central.mean_quality() > 0.9);
        // Same global demand: total costs are within 2x of each other.
        let ratio = r.geo_vm_cost() / r.central.total_vm_cost;
        assert!((0.5..2.0).contains(&ratio), "cost ratio {ratio}");
        let c = csv(&r);
        assert_eq!(c.lines().count(), 6);
    }

    #[test]
    fn central_peak_population_exceeds_any_single_region() {
        let r = run(SimMode::ClientServer, 4.0);
        let max_region = r
            .per_region
            .iter()
            .map(|(_, m)| m.peak_peers())
            .max()
            .unwrap();
        assert!(r.central.peak_peers() > max_region);
    }
}
