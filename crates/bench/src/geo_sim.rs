//! Simulation-level multi-region experiment (paper's future work): the
//! **three-way deployment comparison** behind the `geo_federation`
//! section of `BENCH_sim.json`.
//!
//! All three deployments serve the identical global demand through the
//! real provisioning loop, with each region billing at its own site's
//! prices ([`cloudmedia_core::federation::paper_sites`]):
//!
//! - **independent** — one full system simulation per region (local-time
//!   diurnal patterns, population-share catalogs), no traffic exchange;
//! - **federated** — the same per-region simulations coupled by the
//!   global placement optimizer: peak/premium demand is redirected into
//!   cheaper off-peak sites, paying egress + SLA latency penalty per
//!   redirected gigabyte;
//! - **central** — a single reference-priced site simulating the
//!   time-zone-multiplexed *mixture* of the shifted patterns.
//!
//! The interesting outcome is the cost sandwich `central ≤ federated ≤
//! independent` (pinned by `crates/sim/tests/federation.rs`): time-zone
//! multiplexing bounds what any placement can save, and the federation
//! recovers part of that gap while keeping every byte in a regional
//! site.

use cloudmedia_sim::config::SimMode;
use cloudmedia_sim::federation::{
    DeploymentKind, FederatedConfig, FederatedMetrics, FederatedSimulator,
};
use serde::Serialize;

/// Outcome of the three deployments for one streaming mode.
#[derive(Debug, Clone)]
pub struct ThreeWayResult {
    /// Streaming mode the comparison ran in.
    pub mode: SimMode,
    /// Simulated horizon, hours.
    pub hours: f64,
    /// Per-region sites, no redirection.
    pub independent: FederatedMetrics,
    /// Per-region sites plus the global placement optimizer.
    pub federated: FederatedMetrics,
    /// One multiplexed reference-priced site.
    pub central: FederatedMetrics,
}

/// Runs the three deployments over `hours` hours in `mode` (in
/// parallel — they are independent simulations).
///
/// # Panics
///
/// Panics if a simulation fails.
pub fn run_three_way(mode: SimMode, hours: f64) -> ThreeWayResult {
    let deploy = |kind: DeploymentKind| -> FederatedMetrics {
        FederatedSimulator::new(FederatedConfig::paper_default(kind, mode, hours))
            .expect("paper federation config is valid")
            .run()
            .expect("deployment run succeeds")
    };
    std::thread::scope(|s| {
        let independent = s.spawn(|| deploy(DeploymentKind::Independent));
        let federated = s.spawn(|| deploy(DeploymentKind::Federated));
        let central = s.spawn(|| deploy(DeploymentKind::Central));
        ThreeWayResult {
            mode,
            hours,
            independent: independent.join().expect("independent thread"),
            federated: federated.join().expect("federated thread"),
            central: central.join().expect("central thread"),
        }
    })
}

/// CSV summary of the comparison (one row per deployment, plus one per
/// federated region showing where traffic moved).
pub fn csv(result: &ThreeWayResult) -> String {
    let mut out = String::from(
        "deployment,total_cost,vm_cost,transfer_cost,latency_penalty_cost,\
         redirected_share,mean_quality\n",
    );
    for (name, m) in [
        ("independent", &result.independent),
        ("federated", &result.federated),
        ("central", &result.central),
    ] {
        out.push_str(&format!(
            "{name},{:.2},{:.2},{:.4},{:.4},{:.4},{:.4}\n",
            m.total_cost(),
            m.total_vm_cost,
            m.total_transfer_cost,
            m.total_latency_penalty_cost,
            m.redirected_share(),
            m.mean_quality(),
        ));
    }
    for r in &result.federated.per_region {
        out.push_str(&format!(
            "federated_{},{:.2},{:.2},{:.4},{:.4},{:.4},{:.4}\n",
            r.region.name,
            // Same cost composition as the deployment rows (VM + storage
            // + transfer + penalty), so the three region totals sum to
            // the federated deployment total.
            r.metrics.total_vm_cost
                + r.metrics.total_storage_cost
                + r.transfer_cost
                + r.latency_penalty_cost,
            r.metrics.total_vm_cost,
            r.transfer_cost,
            r.latency_penalty_cost,
            r.redirected_share(),
            r.metrics.mean_quality(),
        ));
    }
    out
}

/// One deployment's row in the `geo_federation` section.
#[derive(Debug, Serialize)]
pub struct DeploymentRow {
    /// Deployment name (`independent` / `federated` / `central`).
    pub deployment: String,
    /// Total cost (VM + storage + transfer + latency penalty), dollars.
    pub total_cost: f64,
    /// VM rental across sites, dollars.
    pub vm_cost: f64,
    /// Egress charges, dollars.
    pub transfer_cost: f64,
    /// SLA latency-penalty credits, dollars.
    pub latency_penalty_cost: f64,
    /// Fraction of cloud-served bytes redirected.
    pub redirected_share: f64,
    /// Population-weighted mean streaming quality.
    pub mean_quality: f64,
    /// Peak concurrent viewers.
    pub peak_peers: usize,
}

impl DeploymentRow {
    fn new(name: &str, m: &FederatedMetrics) -> Self {
        Self {
            deployment: name.to_owned(),
            total_cost: m.total_cost(),
            vm_cost: m.total_vm_cost,
            transfer_cost: m.total_transfer_cost,
            latency_penalty_cost: m.total_latency_penalty_cost,
            redirected_share: m.redirected_share(),
            mean_quality: m.mean_quality(),
            peak_peers: m.peak_peers(),
        }
    }
}

/// One streaming mode's comparison in the `geo_federation` section.
#[derive(Debug, Serialize)]
pub struct ModeComparison {
    /// Streaming mode.
    pub mode: String,
    /// Simulated horizon, hours.
    pub sim_hours: f64,
    /// The three deployments, independent first.
    pub deployments: Vec<DeploymentRow>,
    /// Federated-vs-independent saving, fraction of independent cost.
    pub federated_saving_vs_independent: f64,
    /// Central-vs-independent saving (the multiplexing bound).
    pub central_saving_vs_independent: f64,
}

/// The `geo_federation` section appended to `BENCH_sim.json`.
#[derive(Debug, Serialize)]
pub struct GeoFederationSection {
    /// Schema tag.
    pub schema: String,
    /// Reading notes.
    pub notes: Vec<String>,
    /// One comparison per streaming mode.
    pub modes: Vec<ModeComparison>,
}

/// Builds one mode's section entry from a three-way result.
pub fn mode_comparison(result: &ThreeWayResult) -> ModeComparison {
    let ind = result.independent.total_cost();
    let saving = |m: &FederatedMetrics| {
        if ind > 0.0 {
            1.0 - m.total_cost() / ind
        } else {
            0.0
        }
    };
    ModeComparison {
        mode: format!("{:?}", result.mode),
        sim_hours: result.hours,
        deployments: vec![
            DeploymentRow::new("independent", &result.independent),
            DeploymentRow::new("federated", &result.federated),
            DeploymentRow::new("central", &result.central),
        ],
        federated_saving_vs_independent: saving(&result.federated),
        central_saving_vs_independent: saving(&result.central),
    }
}

/// Wraps mode comparisons into the full section.
pub fn section(modes: Vec<ModeComparison>) -> GeoFederationSection {
    GeoFederationSection {
        schema: "cloudmedia-bench-geo-federation/v1".into(),
        notes: vec![
            "Three-site deployment (americas 1.0x / europe 1.15x / apac 1.30x VM \
             prices, $0.01/GB egress, $0.005/GB SLA latency penalty). The cost \
             sandwich central <= federated <= independent is pinned by \
             crates/sim/tests/federation.rs."
                .into(),
        ],
        modes,
    }
}

/// Appends (or refreshes) a named JSON section inside the benchmark
/// file, assuming sections are appended in regeneration order
/// (`bench_sim`, `bench_des`, then this) so each marker-to-end
/// replacement is lossless for earlier sections.
pub fn append_section(out_path: &str, marker_key: &str, section_json: &str) -> std::io::Result<()> {
    let marker = format!("\"{marker_key}\":");
    let base = match std::fs::read_to_string(out_path) {
        Ok(text) => {
            let text = text.trim_end();
            if let Some(i) = text.find(&marker) {
                text[..i]
                    .trim_end()
                    .trim_end_matches(',')
                    .trim_end()
                    .to_string()
            } else {
                text.strip_suffix('}')
                    .map(|s| s.trim_end().to_string())
                    .unwrap_or_else(|| "{\n  \"schema\": \"cloudmedia-bench-sim/v1\"".into())
            }
        }
        Err(_) => "{\n  \"schema\": \"cloudmedia-bench-sim/v1\"".into(),
    };
    std::fs::write(out_path, format!("{base},\n  {marker} {section_json}\n}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_deployments_serve_the_same_demand_well() {
        let r = run_three_way(SimMode::ClientServer, 4.0);
        assert_eq!(r.independent.per_region.len(), 3);
        assert_eq!(r.federated.per_region.len(), 3);
        assert_eq!(r.central.per_region.len(), 1);
        for m in [&r.independent, &r.federated, &r.central] {
            assert!(m.mean_quality() > 0.9, "quality {}", m.mean_quality());
            assert!(m.total_vm_cost > 0.0);
        }
        let c = csv(&r);
        assert_eq!(c.lines().count(), 7, "3 deployments + 3 regions + header");
        let section = mode_comparison(&r);
        assert_eq!(section.deployments.len(), 3);
        assert!(serde_json::to_string(&section).is_ok());
    }

    #[test]
    fn central_peak_population_exceeds_any_single_region() {
        let r = run_three_way(SimMode::ClientServer, 4.0);
        let max_region = r
            .independent
            .per_region
            .iter()
            .map(|reg| {
                reg.metrics
                    .samples
                    .iter()
                    .map(|s| s.active_peers)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap();
        assert!(r.central.peak_peers() > max_region);
    }

    #[test]
    fn append_section_is_idempotent_per_key() {
        let dir = std::env::temp_dir().join("cloudmedia-geo-fed-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        append_section(path, "geo_federation", "{\"a\": 1}").unwrap();
        append_section(path, "geo_federation", "{\"a\": 2}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let parsed: serde::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(text.matches("geo_federation").count(), 1, "{text}");
        drop(parsed);
    }
}
