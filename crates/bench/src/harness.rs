//! Shared experiment plumbing: argument parsing and the paper-scale
//! simulation runs reused across figures.

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::metrics::Metrics;
use cloudmedia_sim::simulator::Simulator;

/// Command-line arguments shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Simulated horizon in hours (default: the paper's full week, 168).
    pub hours: f64,
}

impl HarnessArgs {
    /// Parses `--hours N` from the process arguments; defaults to 168.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut hours = 168.0;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--hours" => {
                    let v = args.next().unwrap_or_else(|| usage());
                    hours = v.parse().unwrap_or_else(|_| {
                        usage();
                    });
                }
                "--help" | "-h" => {
                    usage();
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    usage();
                }
            }
        }
        Self { hours }
    }
}

fn usage() -> ! {
    eprintln!("usage: <experiment> [--hours N]   (default: 168 = the paper's week)");
    std::process::exit(2)
}

/// The two paper-scale runs most figures consume.
#[derive(Debug, Clone)]
pub struct PaperRuns {
    /// Client–server mode metrics.
    pub cs: Metrics,
    /// P2P mode metrics.
    pub p2p: Metrics,
    /// The engine that produced both runs; every emitted result row is
    /// tagged with it so CSV/JSON consumers can tell Scan / Indexed /
    /// EventDriven numbers apart without guessing.
    pub kernel: cloudmedia_sim::config::SimKernel,
}

/// Runs the paper's experiment in both streaming modes over `hours` hours
/// (the two runs execute in parallel).
///
/// # Panics
///
/// Panics if a simulation fails — experiment binaries treat that as fatal.
pub fn paper_runs(hours: f64) -> PaperRuns {
    let kernel = cloudmedia_sim::config::SimKernel::default();
    let run = |mode: SimMode| -> Metrics {
        let mut cfg = SimConfig::paper_default(mode);
        cfg.trace.horizon_seconds = hours * 3600.0;
        cfg.kernel = kernel;
        Simulator::new(cfg)
            .expect("paper config is valid")
            .run()
            .expect("paper-scale run succeeds")
    };
    let (cs, p2p) = rayon::join(|| run(SimMode::ClientServer), || run(SimMode::P2p));
    PaperRuns { cs, p2p, kernel }
}

/// Formats a bandwidth in Mbps with two decimals (the paper's figures are
/// in Mbps).
pub fn mbps(bytes_per_sec: f64) -> f64 {
    (bytes_per_sec * 8.0 / 1e6 * 100.0).round() / 100.0
}

/// Rounds to three decimals (quality fractions).
pub fn q3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_converts() {
        assert_eq!(mbps(1.25e6), 10.0);
        assert_eq!(mbps(0.0), 0.0);
    }

    #[test]
    fn q3_rounds() {
        assert_eq!(q3(0.97349), 0.973);
        assert_eq!(q3(1.0), 1.0);
    }

    #[test]
    fn short_paper_runs_complete() {
        let runs = paper_runs(2.0);
        assert_eq!(runs.cs.intervals.len(), 2);
        assert_eq!(runs.p2p.intervals.len(), 2);
        assert!(runs.cs.mean_quality() > 0.8);
    }
}
