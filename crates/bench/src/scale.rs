//! Scale sweep: throughput and memory of the sharded channel-parallel
//! round engine versus population, plus the serial ≡ parallel
//! bit-equality check, recorded as the `scale_sweep` section of
//! `BENCH_sim.json` (binary: `bench_scale`).
//!
//! Each sweep point runs `cloudmedia_sim` with a
//! [`SimConfig::scale_out`] mega-catalog configuration — thousands of
//! Zipf channels, arrivals streamed lazily so memory stays
//! `O(channels + peers)` — and reports simulated-hours-per-wall-second
//! and the process's peak RSS. The headline row is a ≥ 1-million-viewer
//! run completing end to end; `crates/sim/tests/sharding.rs` pins the
//! bit-equality contract the `equality` entry re-checks here.

use std::time::Instant;

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::peak_rss_bytes;
use cloudmedia_sim::simulator::Simulator;
use serde::Serialize;

/// One sweep measurement.
#[derive(Debug, Serialize)]
pub struct ScaleRow {
    /// Target steady-state concurrent viewers.
    pub population: f64,
    /// Channels in the mega catalog.
    pub channels: usize,
    /// Streaming mode.
    pub mode: String,
    /// Whether shards were fanned across the worker pool.
    pub parallel: bool,
    /// Worker-pool threads the run had available.
    pub threads: usize,
    /// Simulated horizon, hours.
    pub sim_hours: f64,
    /// Wall time, seconds.
    pub wall_seconds: f64,
    /// Simulated hours per wall second.
    pub sim_hours_per_wall_second: f64,
    /// Peak concurrent viewers actually reached.
    pub peak_peers: usize,
    /// Mean streaming quality.
    pub mean_quality: f64,
    /// Process peak RSS after the run, bytes (`VmHWM`; monotone across
    /// the sweep, so ascending-population order makes each reading an
    /// honest per-run upper bound). `None` off Linux.
    pub peak_rss_bytes: Option<u64>,
}

/// The serial ≡ parallel re-check recorded with the sweep.
#[derive(Debug, Serialize)]
pub struct EqualityCheck {
    /// Population the check ran at.
    pub population: f64,
    /// Channels the check ran at.
    pub channels: usize,
    /// Horizon, hours.
    pub sim_hours: f64,
    /// Whether serial and parallel produced bit-identical metrics.
    pub serial_equals_parallel: bool,
}

/// The `scale_sweep` section appended to `BENCH_sim.json`.
#[derive(Debug, Serialize)]
pub struct ScaleSweepSection {
    /// Schema tag.
    pub schema: String,
    /// Hardware threads on the host.
    pub host_threads: usize,
    /// Reading notes.
    pub notes: Vec<String>,
    /// Sweep rows, ascending population.
    pub sweep: Vec<ScaleRow>,
    /// The serial ≡ parallel bit-equality re-check.
    pub equality: EqualityCheck,
}

/// Runs one sweep point and measures it.
///
/// # Panics
///
/// Panics if the configuration is invalid or the run fails (this is a
/// benchmark binary's hot path; failures should abort loudly).
pub fn run_point(
    population: f64,
    channels: usize,
    mode: SimMode,
    hours: f64,
    parallel: bool,
) -> ScaleRow {
    let mut cfg = SimConfig::scale_out(mode, channels, population).expect("valid scale config");
    cfg.trace.horizon_seconds = hours * 3600.0;
    cfg.parallel_channels = parallel;
    let start = Instant::now();
    let metrics = Simulator::new(cfg)
        .expect("valid configuration")
        .run()
        .expect("scale run succeeds");
    let wall = start.elapsed().as_secs_f64();
    ScaleRow {
        population,
        channels,
        mode: format!("{mode:?}"),
        parallel,
        threads: rayon::current_num_threads(),
        sim_hours: hours,
        wall_seconds: wall,
        sim_hours_per_wall_second: hours / wall.max(1e-9),
        peak_peers: metrics.peak_peers(),
        mean_quality: metrics.mean_quality(),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Runs the serial and parallel executions of one configuration and
/// verifies bit equality of the full metrics.
///
/// # Panics
///
/// Panics if either run fails to configure or execute.
pub fn equality_check(
    population: f64,
    channels: usize,
    mode: SimMode,
    hours: f64,
) -> EqualityCheck {
    let run = |parallel: bool| {
        let mut cfg = SimConfig::scale_out(mode, channels, population).expect("valid scale config");
        cfg.trace.horizon_seconds = hours * 3600.0;
        cfg.parallel_channels = parallel;
        Simulator::new(cfg)
            .expect("valid configuration")
            .run()
            .expect("scale run succeeds")
    };
    EqualityCheck {
        population,
        channels,
        sim_hours: hours,
        serial_equals_parallel: run(false) == run(true),
    }
}

/// Wraps the measurements into the full section.
pub fn section(sweep: Vec<ScaleRow>, equality: EqualityCheck) -> ScaleSweepSection {
    ScaleSweepSection {
        schema: "cloudmedia-scale-sweep/v1".into(),
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        notes: vec![
            "Sharded engine (SimKernel::Sharded): one shard per channel, fanned \
             across the rayon pool; serial and parallel runs are bit-identical \
             (pinned by crates/sim/tests/sharding.rs and re-checked in `equality`). \
             Set RAYON_NUM_THREADS to sweep thread counts."
                .into(),
            "peak_rss_bytes reads /proc VmHWM, the process high-water mark: rows \
             run in ascending population order so each reading upper-bounds its \
             own run."
                .into(),
            "Populations are steady-state targets; peak_peers shows what the \
             diurnal ramp actually reached within the horizon."
                .into(),
        ],
        sweep,
        equality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_point_measures_and_serializes() {
        let row = run_point(2000.0, 10, SimMode::ClientServer, 0.5, true);
        assert_eq!(row.channels, 10);
        assert!(row.wall_seconds > 0.0);
        assert!(row.sim_hours_per_wall_second > 0.0);
        assert!(row.peak_peers > 0);
        let eq = equality_check(2000.0, 10, SimMode::ClientServer, 0.5);
        assert!(eq.serial_equals_parallel, "serial and parallel diverged");
        let section = section(vec![row], eq);
        assert!(serde_json::to_string(&section).is_ok());
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }
}
