//! Scale sweep: throughput and memory of the sharded channel-parallel
//! round engine versus population, plus the serial ≡ parallel
//! bit-equality check, recorded as the `scale_sweep` section of
//! `BENCH_sim.json` (binary: `bench_scale`).
//!
//! Each sweep point runs `cloudmedia_sim` with a
//! [`SimConfig::scale_out`] mega-catalog configuration — thousands of
//! Zipf channels, arrivals streamed lazily so memory stays
//! `O(channels + peers)` — and reports simulated-hours-per-wall-second
//! and the process's peak RSS. The headline row is a ≥ 1-million-viewer
//! run completing end to end; `crates/sim/tests/sharding.rs` pins the
//! bit-equality contract the `equality` entry re-checks here.

use std::time::Instant;

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::peak_rss_bytes;
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::diurnal::{DiurnalPattern, FlashCrowd};
use serde::Serialize;

/// One sweep measurement.
#[derive(Debug, Serialize)]
pub struct ScaleRow {
    /// Scenario kind: `"steady"` (diurnal mega catalog) or
    /// `"flash_crowd_1ch"` (the one-channel burst lane).
    pub scenario: String,
    /// Target steady-state concurrent viewers.
    pub population: f64,
    /// Channels in the mega catalog.
    pub channels: usize,
    /// Streaming mode.
    pub mode: String,
    /// Whether shards were fanned across the worker pool.
    pub parallel: bool,
    /// Sub-channel lane cap ([`SimConfig::lanes`]; 0 = auto).
    pub lanes: usize,
    /// Whether the quiescence-aware epoch engine was enabled
    /// ([`SimConfig::quiescence`]). On/off rows are bit-identical in
    /// metrics (pinned by `crates/sim/tests/quiesce_invariance.rs`);
    /// only the wall-clock columns may differ.
    pub quiesce: bool,
    /// Worker-pool threads the run had available.
    pub threads: usize,
    /// Simulated horizon, hours.
    pub sim_hours: f64,
    /// Wall time, seconds.
    pub wall_seconds: f64,
    /// Simulated hours per wall second.
    pub sim_hours_per_wall_second: f64,
    /// Peak concurrent viewers actually reached.
    pub peak_peers: usize,
    /// Mean streaming quality.
    pub mean_quality: f64,
    /// Process peak RSS after the run, bytes (`VmHWM`; monotone across
    /// the sweep, so ascending-population order makes each reading an
    /// honest per-run upper bound). `None` off Linux.
    pub peak_rss_bytes: Option<u64>,
}

/// The serial ≡ parallel re-check recorded with the sweep.
#[derive(Debug, Serialize)]
pub struct EqualityCheck {
    /// Population the check ran at.
    pub population: f64,
    /// Channels the check ran at.
    pub channels: usize,
    /// Horizon, hours.
    pub sim_hours: f64,
    /// Whether serial and parallel produced bit-identical metrics.
    pub serial_equals_parallel: bool,
}

/// The `scale_sweep` section appended to `BENCH_sim.json`.
#[derive(Debug, Serialize)]
pub struct ScaleSweepSection {
    /// Schema tag.
    pub schema: String,
    /// Hardware threads on the host.
    pub host_threads: usize,
    /// Reading notes.
    pub notes: Vec<String>,
    /// Sweep rows, ascending population (steady rows first, then the
    /// one-channel flash-crowd lane).
    pub sweep: Vec<ScaleRow>,
    /// The serial ≡ parallel bit-equality re-check (steady sweep).
    pub equality: EqualityCheck,
    /// The serial ≡ laned bit-equality re-check on the one-channel
    /// flash-crowd scenario (`None` when the lane was skipped).
    pub flash_equality: Option<EqualityCheck>,
}

/// Runs one sweep point and measures it.
///
/// # Panics
///
/// Panics if the configuration is invalid or the run fails (this is a
/// benchmark binary's hot path; failures should abort loudly).
pub fn run_point(
    population: f64,
    channels: usize,
    mode: SimMode,
    hours: f64,
    parallel: bool,
    quiesce: bool,
) -> ScaleRow {
    let mut cfg = SimConfig::scale_out(mode, channels, population).expect("valid scale config");
    cfg.trace.horizon_seconds = hours * 3600.0;
    cfg.parallel_channels = parallel;
    cfg.quiescence = quiesce;
    measure(
        "steady", cfg, population, channels, mode, hours, parallel, 0,
    )
}

/// The one-channel flash-crowd configuration: a quiet baseline with a
/// sharp arrival burst mid-horizon, sized so the burst peak far
/// exceeds the provisioned steady capacity. Every burst viewer starts
/// downloading at once and the deficit stretches downloads across
/// rounds, so the shard's download index — the structure the sub-lane
/// fan-out parallelizes — stays giant for a sustained stretch. This is
/// the workload the `lanes` machinery exists for; `docs/SCALING.md`
/// explains how to read its rows.
pub fn flash_crowd_config(population: f64, hours: f64) -> SimConfig {
    let mut cfg =
        SimConfig::scale_out(SimMode::ClientServer, 1, population).expect("valid flash config");
    cfg.trace.horizon_seconds = hours * 3600.0;
    // The burst peaks ~4× above the diurnal profile scale_out sized the
    // fleet for; grow capacity and budgets so the *post-burst*
    // provisioning plan stays feasible. During the burst itself the
    // hour-late controller still reserves last interval's capacity, so
    // downloads dilute and the download index balloons — the starvation
    // is in the provisioning lag, not in an infeasible fleet.
    cfg.fleet_scale *= 4.0;
    cfg.vm_budget_per_hour *= 4.0;
    cfg.storage_budget_per_hour *= 4.0;
    cfg.trace.diurnal = DiurnalPattern::new(
        0.3,
        vec![FlashCrowd {
            peak_hour: (hours / 2.0).min(23.0),
            width_hours: 0.15,
            amplitude: 12.0,
        }],
    )
    .expect("valid flash diurnal");
    cfg
}

/// Runs one flash-crowd lane point: `lanes` sub-lanes on the single
/// hot shard (0 = auto, `serial` forces the single-lane reference).
pub fn run_flash_point(population: f64, hours: f64, parallel: bool, lanes: usize) -> ScaleRow {
    let mut cfg = flash_crowd_config(population, hours);
    cfg.parallel_channels = parallel;
    cfg.lanes = if parallel { lanes } else { 0 };
    measure(
        "flash_crowd_1ch",
        cfg,
        population,
        1,
        SimMode::ClientServer,
        hours,
        parallel,
        lanes,
    )
}

#[allow(clippy::too_many_arguments)]
fn measure(
    scenario: &str,
    cfg: SimConfig,
    population: f64,
    channels: usize,
    mode: SimMode,
    hours: f64,
    parallel: bool,
    lanes: usize,
) -> ScaleRow {
    let quiesce = cfg.quiescence;
    let start = Instant::now();
    let metrics = Simulator::new(cfg)
        .expect("valid configuration")
        .run()
        .expect("scale run succeeds");
    let wall = start.elapsed().as_secs_f64();
    ScaleRow {
        scenario: scenario.into(),
        population,
        channels,
        mode: format!("{mode:?}"),
        parallel,
        lanes,
        quiesce,
        threads: rayon::current_num_threads(),
        sim_hours: hours,
        wall_seconds: wall,
        sim_hours_per_wall_second: hours / wall.max(1e-9),
        peak_peers: metrics.peak_peers(),
        mean_quality: metrics.mean_quality(),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Runs the serial single-lane and parallel laned executions of the
/// flash-crowd scenario and verifies bit equality of the full metrics.
///
/// # Panics
///
/// Panics if either run fails to configure or execute.
pub fn flash_equality_check(population: f64, hours: f64, lanes: usize) -> EqualityCheck {
    let run = |parallel: bool| {
        let mut cfg = flash_crowd_config(population, hours);
        cfg.parallel_channels = parallel;
        cfg.lanes = if parallel { lanes } else { 0 };
        Simulator::new(cfg)
            .expect("valid configuration")
            .run()
            .expect("flash run succeeds")
    };
    EqualityCheck {
        population,
        channels: 1,
        sim_hours: hours,
        serial_equals_parallel: run(false) == run(true),
    }
}

/// Runs the serial and parallel executions of one configuration and
/// verifies bit equality of the full metrics.
///
/// # Panics
///
/// Panics if either run fails to configure or execute.
pub fn equality_check(
    population: f64,
    channels: usize,
    mode: SimMode,
    hours: f64,
) -> EqualityCheck {
    let run = |parallel: bool| {
        let mut cfg = SimConfig::scale_out(mode, channels, population).expect("valid scale config");
        cfg.trace.horizon_seconds = hours * 3600.0;
        cfg.parallel_channels = parallel;
        Simulator::new(cfg)
            .expect("valid configuration")
            .run()
            .expect("scale run succeeds")
    };
    EqualityCheck {
        population,
        channels,
        sim_hours: hours,
        serial_equals_parallel: run(false) == run(true),
    }
}

/// Wraps the measurements into the full section.
pub fn section(
    sweep: Vec<ScaleRow>,
    equality: EqualityCheck,
    flash_equality: Option<EqualityCheck>,
) -> ScaleSweepSection {
    ScaleSweepSection {
        schema: "cloudmedia-scale-sweep/v3".into(),
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        notes: vec![
            "Sharded engine (SimKernel::Sharded): one shard per channel, fanned \
             across the rayon pool; serial and parallel runs are bit-identical \
             (pinned by crates/sim/tests/sharding.rs and re-checked in `equality`). \
             Set RAYON_NUM_THREADS to sweep thread counts."
                .into(),
            "peak_rss_bytes reads /proc VmHWM, the process high-water mark: rows \
             run in ascending population order so each reading upper-bounds its \
             own run."
                .into(),
            "Populations are steady-state targets; peak_peers shows what the \
             diurnal ramp actually reached within the horizon."
                .into(),
            "`flash_crowd_1ch` rows are the one-channel burst lane: a single \
             shard whose download index balloons past provisioned capacity, \
             split across `lanes` sub-lanes (SimConfig::lanes; serial rows are \
             the single-lane reference and bit-identical to every laned run — \
             pinned by crates/sim/tests/lane_invariance.rs, re-checked in \
             `flash_equality`). Lane speedup needs pool threads: compare rows \
             across RAYON_NUM_THREADS settings, not within a 1-thread host."
                .into(),
            "`quiesce` marks rows run with the quiescence-aware epoch engine \
             (SimConfig::quiescence, the default; `--no-quiesce` disables it). \
             Steady channels whose demand is fully served settle into epochs \
             whose rounds are skipped or fast-forwarded in closed form; results \
             are bit-identical on/off (pinned by \
             crates/sim/tests/quiesce_invariance.rs), so paired steady rows \
             isolate the engine's wall-clock effect. Flash-crowd rows keep the \
             default: the burst breaks epochs, so quiescence shows up there as \
             overhead-neutral, not as a speedup."
                .into(),
        ],
        sweep,
        equality,
        flash_equality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_point_measures_and_serializes() {
        let row = run_point(2000.0, 10, SimMode::ClientServer, 0.5, true, true);
        assert_eq!(row.channels, 10);
        assert_eq!(row.scenario, "steady");
        assert!(row.quiesce);
        assert!(row.wall_seconds > 0.0);
        assert!(row.sim_hours_per_wall_second > 0.0);
        assert!(row.peak_peers > 0);
        let off = run_point(2000.0, 10, SimMode::ClientServer, 0.5, true, false);
        assert!(!off.quiesce);
        assert_eq!(row.peak_peers, off.peak_peers);
        assert_eq!(row.mean_quality, off.mean_quality);
        let eq = equality_check(2000.0, 10, SimMode::ClientServer, 0.5);
        assert!(eq.serial_equals_parallel, "serial and parallel diverged");
        let section = section(vec![row, off], eq, None);
        let json = serde_json::to_string(&section).unwrap();
        assert!(json.contains("cloudmedia-scale-sweep/v3"));
        assert!(json.contains("\"quiesce\":true"));
        assert!(json.contains("\"quiesce\":false"));
    }

    #[test]
    fn tiny_flash_lane_measures_and_stays_bit_identical() {
        let row = run_flash_point(3000.0, 0.5, true, 4);
        assert_eq!(row.scenario, "flash_crowd_1ch");
        assert_eq!(row.channels, 1);
        assert_eq!(row.lanes, 4);
        assert!(row.quiesce, "flash rows keep the quiescence default");
        assert!(row.peak_peers > 0);
        let eq = flash_equality_check(3000.0, 0.5, 4);
        assert!(eq.serial_equals_parallel, "laned flash run diverged");
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }
}
