//! Stage-profile benchmark: telemetry-instrumented paper-week runs
//! producing the `stage_profile` section of `BENCH_sim.json` (binary:
//! `bench_profile`).
//!
//! Each kernel is run twice per repetition — once with the no-op
//! telemetry sink, once with a live metrics registry — and the minimum
//! wall time of each side is kept. The relative overhead of the live
//! registry is recorded alongside the per-stage wall-time shares; the
//! repo's budget for it is ≤ 2 % on the 168 h paper week. Telemetry is a
//! pure side channel, so the two runs' metrics must be bit-identical;
//! `metrics_identical: false` in the checked-in file is a regression.

use std::time::Instant;

use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_sim::telem;
use cloudmedia_sim::SimError;
use serde::Serialize;

/// One `stage/*` counter of the telemetry-on run.
#[derive(Debug, Clone, Serialize)]
pub struct StageRow {
    /// Metric name (e.g. `stage/advance`).
    pub stage: String,
    /// Wall time attributed to the stage, nanoseconds.
    pub nanos: u64,
    /// Fraction of the summed stage time (the `stage/*` counters
    /// partition the round loop, so shares add up to 1).
    pub share: f64,
}

/// The stage profile of one kernel over the paper week.
#[derive(Debug, Clone, Serialize)]
pub struct KernelStageProfile {
    /// Engine name (`indexed`, `sharded`, ...).
    pub engine: String,
    /// Rounds the telemetry-on run executed.
    pub rounds: u64,
    /// Best-of-reps wall time with the no-op sink, seconds.
    pub wall_seconds_telemetry_off: f64,
    /// Best-of-reps wall time with a live registry, seconds.
    pub wall_seconds_telemetry_on: f64,
    /// Relative overhead of the live registry, percent: the median of
    /// the per-repetition paired on/off wall-time ratios (can dip below
    /// zero within machine noise).
    pub overhead_pct: f64,
    /// Whether the telemetry-on and telemetry-off runs produced
    /// bit-identical metrics. Must be `true`.
    pub metrics_identical: bool,
    /// Per-stage wall times, sorted by time spent (descending).
    pub stages: Vec<StageRow>,
}

/// The `stage_profile` benchmark section.
#[derive(Debug, Clone, Serialize)]
pub struct StageProfileSection {
    /// Schema tag for downstream readers.
    pub schema: String,
    /// Horizon every run covered, hours.
    pub sim_hours: f64,
    /// Repetitions per (kernel, telemetry) pair; the minimum wall time
    /// is kept.
    pub reps: usize,
    /// Free-text provenance notes.
    pub notes: Vec<String>,
    /// One profile per kernel.
    pub kernels: Vec<KernelStageProfile>,
}

fn engine_name(kernel: SimKernel) -> &'static str {
    match kernel {
        SimKernel::Scan => "scan",
        SimKernel::Indexed => "indexed",
        SimKernel::EventDriven => "event-driven",
        SimKernel::Sharded => "sharded",
    }
}

/// Profiles one kernel: `reps` telemetry-off runs, `reps` telemetry-on
/// runs, minimum wall time on each side, stage table from the last
/// telemetry-on registry (counters are deterministic across reps; only
/// the wall-clock values jitter).
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn profile_kernel(
    kernel: SimKernel,
    mode: SimMode,
    hours: f64,
    reps: usize,
) -> Result<KernelStageProfile, SimError> {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.trace.horizon_seconds = hours * 3600.0;
    cfg.kernel = kernel;
    let sim = Simulator::new(cfg)?;

    // One untimed warm-up run so allocator pools and caches are hot
    // before either side is measured.
    sim.run_with_faults()?;

    // Each repetition runs telemetry-off and telemetry-on back to back
    // and contributes one on/off wall-time ratio. The overhead estimate
    // is the median of those paired ratios: pairing cancels slow drift
    // (page cache, frequency scaling) and the median discards the
    // repetitions a shared host's CPU-steal spikes land in — a plain
    // min-of-N on each side cannot, because the spikes hit the two
    // sides independently.
    let mut wall_off = f64::INFINITY;
    let mut wall_on = f64::INFINITY;
    let mut ratios = Vec::with_capacity(reps.max(1));
    let mut metrics_off = None;
    let mut metrics_on = None;
    let mut snapshot = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let run = sim.run_with_faults()?;
        let off = t0.elapsed().as_secs_f64();
        wall_off = wall_off.min(off);
        metrics_off = Some(run.metrics);

        let tel = telem::new_registry(false);
        let t0 = Instant::now();
        let run = sim.run_with_telemetry(&tel)?;
        let on = t0.elapsed().as_secs_f64();
        wall_on = wall_on.min(on);
        metrics_on = Some(run.metrics);
        snapshot = Some(tel.snapshot());

        ratios.push(on / off);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median_ratio = ratios[ratios.len() / 2];

    let snapshot = snapshot.expect("at least one telemetry-on rep");
    let stage_rows = snapshot.sorted_by_value("stage/");
    let staged_total: u64 = stage_rows.iter().map(|&(_, v)| v).sum();
    let stages = stage_rows
        .into_iter()
        .filter(|&(_, ns)| ns > 0)
        .map(|(name, ns)| StageRow {
            stage: name.to_owned(),
            nanos: ns,
            share: ns as f64 / staged_total.max(1) as f64,
        })
        .collect();

    Ok(KernelStageProfile {
        engine: engine_name(kernel).to_owned(),
        rounds: snapshot.value(telem::ROUNDS),
        wall_seconds_telemetry_off: wall_off,
        wall_seconds_telemetry_on: wall_on,
        overhead_pct: (median_ratio - 1.0) * 100.0,
        metrics_identical: metrics_on == metrics_off,
        stages,
    })
}

/// Wraps the kernel profiles into the full section.
pub fn section(hours: f64, reps: usize, kernels: Vec<KernelStageProfile>) -> StageProfileSection {
    StageProfileSection {
        schema: "cloudmedia-bench-stage-profile/v1".into(),
        sim_hours: hours,
        reps,
        notes: vec![
            "Best-of-reps wall times; overhead_pct = median of paired per-rep \
             on/off wall-time ratios, live registry vs no-op sink. \
             Budget: <= 2 % on the 168 h paper week. Shares are over the stage/* \
             counters, which partition the round loop (prov/* sub-stages nest \
             inside stage/provisioning and are excluded). Bit-identical metrics \
             with telemetry on/off are pinned by \
             crates/sim/tests/telemetry_determinism.rs."
                .into(),
        ],
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_profile_partitions_the_round_loop() {
        let p = profile_kernel(SimKernel::Indexed, SimMode::ClientServer, 2.0, 1).unwrap();
        assert_eq!(p.engine, "indexed");
        assert!(p.rounds > 0);
        assert!(p.metrics_identical, "telemetry changed the results");
        assert!(!p.stages.is_empty());
        let total_share: f64 = p.stages.iter().map(|s| s.share).sum();
        assert!(
            (total_share - 1.0).abs() < 1e-9,
            "shares sum to {total_share}"
        );
        assert!(p.stages.iter().any(|s| s.stage == "stage/advance"));
        let json = serde_json::to_string(&section(2.0, 1, vec![p])).unwrap();
        assert!(json.contains("stage_profile") || json.contains("stage/"));
    }
}
