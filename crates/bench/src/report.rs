//! CSV reports for the figures driven by the two paper-scale runs
//! (Figs. 4, 5, 6, 7 and 10).

use cloudmedia_sim::metrics::Metrics;

use crate::harness::{mbps, q3, PaperRuns};

/// Fig. 4 — cloud capacity provisioning vs usage over time, both modes.
/// Columns: hour, C/S reserved, C/S used, P2P reserved, P2P used (Mbps).
pub fn fig4(runs: &PaperRuns) -> String {
    let mut out =
        String::from("hour,cs_reserved_mbps,cs_used_mbps,p2p_reserved_mbps,p2p_used_mbps\n");
    for (a, b) in runs.cs.samples.iter().zip(&runs.p2p.samples) {
        out.push_str(&format!(
            "{:.2},{},{},{},{}\n",
            a.time / 3600.0,
            mbps(a.reserved_bandwidth),
            mbps(a.used_bandwidth),
            mbps(b.reserved_bandwidth),
            mbps(b.used_bandwidth),
        ));
    }
    out
}

/// Summary line for Fig. 4: coverage fractions (the paper's "provisioned
/// exceeds used in the majority of time").
pub fn fig4_summary(runs: &PaperRuns) -> String {
    format!(
        "# kernel: {:?}\n\
         # C/S: mean reserved {} Mbps, mean used {} Mbps, coverage {:.3}\n\
         # P2P: mean reserved {} Mbps, mean used {} Mbps, coverage {:.3}\n",
        runs.kernel,
        mbps(runs.cs.mean_reserved_bandwidth()),
        mbps(runs.cs.mean_used_bandwidth()),
        runs.cs.provision_coverage(),
        mbps(runs.p2p.mean_reserved_bandwidth()),
        mbps(runs.p2p.mean_used_bandwidth()),
        runs.p2p.provision_coverage(),
    )
}

/// Fig. 5 — average streaming quality over time, both modes.
pub fn fig5(runs: &PaperRuns) -> String {
    let mut out = String::from("hour,cs_quality,p2p_quality\n");
    for (a, b) in runs.cs.samples.iter().zip(&runs.p2p.samples) {
        out.push_str(&format!(
            "{:.2},{},{}\n",
            a.time / 3600.0,
            q3(a.quality),
            q3(b.quality)
        ));
    }
    out
}

/// Summary for Fig. 5 (the paper reports C/S avg 0.97, P2P avg 0.95).
pub fn fig5_summary(runs: &PaperRuns) -> String {
    format!(
        "# kernel: {:?}\n# mean quality: C/S {:.3}, P2P {:.3}\n",
        runs.kernel,
        runs.cs.mean_quality(),
        runs.p2p.mean_quality()
    )
}

/// Fig. 6 — per-channel streaming quality vs channel size scatter,
/// client–server mode, over one day (the paper uses one day's samples of
/// all 20 channels). `day` selects which simulated day.
pub fn fig6(cs: &Metrics, day: usize) -> String {
    let from = day as f64 * 86_400.0;
    let to = from + 86_400.0;
    let mut out = String::from("channel_users,quality\n");
    for s in cs.samples_in(from, to) {
        for (&n, &q) in s.per_channel_peers.iter().zip(&s.per_channel_quality) {
            if n > 0 {
                out.push_str(&format!("{n},{}\n", q3(q)));
            }
        }
    }
    out
}

/// Fig. 7 — provisioned cloud bandwidth vs channel size, both modes, one
/// day of hourly controller decisions.
pub fn fig7(runs: &PaperRuns, day: usize) -> String {
    let from = day as f64 * 86_400.0;
    let to = from + 86_400.0;
    let mut out = String::from("mode,channel_users,provisioned_mbps\n");
    for (mode, m) in [("C/S", &runs.cs), ("P2P", &runs.p2p)] {
        for rec in m.intervals.iter().filter(|r| r.time >= from && r.time < to) {
            for (&n, &bw) in rec.per_channel_peers.iter().zip(&rec.per_channel_demand) {
                if n > 0 {
                    out.push_str(&format!("{mode},{n},{}\n", mbps(bw)));
                }
            }
        }
    }
    out
}

/// Fig. 10 — overall hourly VM rental cost over one day, both modes.
pub fn fig10(runs: &PaperRuns, day: usize) -> String {
    let from = day as f64 * 86_400.0;
    let to = from + 86_400.0;
    let mut out = String::from("hour,cs_cost_per_hour,p2p_cost_per_hour\n");
    let cs: Vec<_> = runs
        .cs
        .intervals
        .iter()
        .filter(|r| r.time >= from && r.time < to)
        .collect();
    let p2p: Vec<_> = runs
        .p2p
        .intervals
        .iter()
        .filter(|r| r.time >= from && r.time < to)
        .collect();
    for (a, b) in cs.iter().zip(&p2p) {
        out.push_str(&format!(
            "{:.0},{:.2},{:.2}\n",
            a.time / 3600.0,
            a.vm_hourly_cost,
            b.vm_hourly_cost
        ));
    }
    out
}

/// Summary for Fig. 10 (the paper: C/S avg ≈ $48/h, P2P avg ≈ $4.27/h)
/// plus the Sec. VI-C storage-cost observation (≈ $0.018/day).
pub fn fig10_summary(runs: &PaperRuns) -> String {
    let days = runs
        .cs
        .samples
        .last()
        .map(|s| s.time / 86_400.0)
        .unwrap_or(1.0)
        .max(1e-9);
    format!(
        "# kernel: {:?}\n\
         # mean VM cost: C/S ${:.2}/h, P2P ${:.2}/h (ratio {:.1}x)\n\
         # storage cost: C/S ${:.4}/day (negligible vs VM rental)\n",
        runs.kernel,
        runs.cs.mean_vm_hourly_cost(),
        runs.p2p.mean_vm_hourly_cost(),
        runs.cs.mean_vm_hourly_cost() / runs.p2p.mean_vm_hourly_cost().max(1e-9),
        runs.cs.total_storage_cost / days,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::paper_runs;

    #[test]
    fn reports_have_expected_shape() {
        let runs = paper_runs(2.0);
        let f4 = fig4(&runs);
        assert!(f4.starts_with("hour,"));
        assert!(f4.lines().count() > 10);
        let f5 = fig5(&runs);
        assert!(f5.lines().count() == f4.lines().count());
        let f6 = fig6(&runs.cs, 0);
        assert!(f6.lines().count() > 10);
        let f7 = fig7(&runs, 0);
        assert!(f7.contains("C/S") && f7.contains("P2P"));
        let f10 = fig10(&runs, 0);
        assert!(f10.lines().count() >= 3);
        assert!(fig4_summary(&runs).contains("coverage"));
        assert!(fig5_summary(&runs).contains("mean quality"));
        assert!(fig10_summary(&runs).contains("ratio"));
    }
}
