//! Tables II and III — the experimental cluster configurations, printed
//! from the same constants the simulator uses.

use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters, GIB};

/// Renders Table II (virtual cluster configurations).
pub fn table_ii() -> String {
    let mut out = String::from(
        "# Table II: Virtual cluster configurations\n\
         type,utility,price_per_hour,vms_per_cluster,vm_bandwidth_mbps\n",
    );
    for c in paper_virtual_clusters() {
        out.push_str(&format!(
            "{},{},{:.3},{},{}\n",
            c.name,
            c.utility,
            c.price.dollars_per_hour,
            c.max_vms,
            c.vm_bandwidth_bytes_per_sec * 8.0 / 1e6,
        ));
    }
    out
}

/// Renders Table III (NFS cluster configurations).
pub fn table_iii() -> String {
    let mut out = String::from(
        "# Table III: NFS cluster configurations\n\
         type,utility,price_per_gb_hour,capacity_gb\n",
    );
    for c in paper_nfs_clusters() {
        out.push_str(&format!(
            "{},{},{:.2e},{}\n",
            c.name,
            c.utility,
            c.price_per_gb.dollars_per_hour,
            c.capacity_bytes as f64 / GIB,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_contains_paper_rows() {
        let t = table_ii();
        assert!(t.contains("Standard,0.6,0.450,75,10"));
        assert!(t.contains("Medium,0.8,0.700,30,10"));
        assert!(t.contains("Advanced,1,0.800,45,10"));
    }

    #[test]
    fn table_iii_contains_paper_rows() {
        let t = table_iii();
        assert!(t.contains("Standard,0.8,1.11e-4,20"));
        assert!(t.contains("High,1,2.08e-4,20"));
    }
}
