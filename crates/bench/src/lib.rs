//! Experiment harness for the CloudMedia reproduction.
//!
//! Each table and figure of the paper's evaluation (Sec. VI) has a binary
//! in `src/bin/` that prints the corresponding series as CSV; the shared
//! logic lives here so `run_all` can regenerate everything in one process
//! (reusing the expensive week-long simulations across figures).
//!
//! | Paper artifact | Module / binary |
//! |---|---|
//! | Table II & III | [`tables`] / `tables` |
//! | Fig. 4 provisioned vs used | [`report`] / `fig4_provision_vs_usage` |
//! | Fig. 5 streaming quality | [`report`] / `fig5_streaming_quality` |
//! | Fig. 6 quality vs channel size | [`report`] / `fig6_quality_vs_channel_size` |
//! | Fig. 7 bandwidth vs channel size | [`report`] / `fig7_bandwidth_vs_channel_size` |
//! | Fig. 8 storage utility | [`four_channel`] / `fig8_storage_utility` |
//! | Fig. 9 VM utility | [`four_channel`] / `fig9_vm_utility` |
//! | Fig. 10 VM cost | [`report`] / `fig10_vm_cost` |
//! | Fig. 11 upload sufficiency | [`fig11`] / `fig11_upload_sufficiency` |
//! | Sec. VI-C VM latency | [`latency`] / `provisioning_latency` |
//! | Footnote 3 chunk size | [`chunk_size`] / `ablation_chunk_size` |

pub mod chunk_size;
pub mod fig11;
pub mod four_channel;
pub mod geo_sim;
pub mod harness;
pub mod latency;
pub mod profile;
pub mod report;
pub mod resilience;
pub mod scale;
pub mod tables;

pub use harness::{paper_runs, HarnessArgs, PaperRuns};
