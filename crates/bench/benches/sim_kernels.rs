//! Criterion benchmarks of the simulator's hot-path kernels and round
//! engines, tracking the perf work of the zero-allocation refactor:
//!
//! - `allocate_pool`: the allocating wrapper vs the in-place and
//!   mask-sparse max–min kernels,
//! - `peer_allocation`: the same three forms of the rarest-first kernel,
//! - `sim_round`: full simulated rounds per wall-second, per engine (the
//!   end-to-end run divided by its round count),
//! - `simulator_e2e`: the week-long experiment at a reduced horizon, per
//!   engine and streaming mode.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudmedia_sim::allocation::{
    allocate_pool, allocate_pool_into, allocate_pool_sparse, peer_allocation, peer_allocation_into,
    peer_allocation_sparse, ChannelRound,
};
use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::simulator::Simulator;

/// A 64-chunk demand vector with the sparsity the simulator actually
/// sees: a handful of requested chunks, the rest zero.
fn sparse_demands() -> (Vec<f64>, u64) {
    let mut demands = vec![0.0; 64];
    let mut mask = 0u64;
    for &(k, d) in &[(0usize, 2.5e6), (7, 1.25e6), (13, 4.0e5), (40, 9.0e5)] {
        demands[k] = d;
        mask |= 1 << k;
    }
    (demands, mask)
}

fn bench_allocate_pool(c: &mut Criterion) {
    let (demands, mask) = sparse_demands();
    let pool = 2.0e6; // scarce: forces the progressive fill + sort
    let mut group = c.benchmark_group("allocate_pool");
    group.bench_function("naive_alloc", |b| {
        b.iter(|| allocate_pool(black_box(&demands), black_box(pool)))
    });
    let mut out = vec![0.0; 64];
    let mut order = Vec::new();
    group.bench_function("inplace", |b| {
        b.iter(|| allocate_pool_into(black_box(&demands), black_box(pool), &mut out, &mut order))
    });
    out.fill(0.0);
    group.bench_function("sparse_mask", |b| {
        b.iter(|| {
            allocate_pool_sparse(
                black_box(&demands),
                black_box(pool),
                &mut out,
                &mut order,
                black_box(mask),
            );
            let mut m = mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                out[k] = 0.0;
            }
        })
    });
    group.finish();
}

fn bench_peer_allocation(c: &mut Criterion) {
    let (requested, mask) = sparse_demands();
    let owners: Vec<usize> = (0..64).map(|i| (i * 7) % 50).collect();
    let owner_upload: Vec<f64> = (0..64).map(|i| 1e5 + (i as f64) * 3.0e4).collect();
    let round = ChannelRound {
        requested_rate: requested.clone(),
        owners: owners.clone(),
        owner_upload: owner_upload.clone(),
        upload_pool: 3.0e6,
    };
    let mut group = c.benchmark_group("peer_allocation");
    group.bench_function("naive_alloc", |b| {
        b.iter(|| peer_allocation(black_box(&round)))
    });
    let mut served = vec![0.0; 64];
    let mut order = Vec::new();
    group.bench_function("inplace", |b| {
        b.iter(|| {
            peer_allocation_into(
                black_box(&requested),
                &owners,
                &owner_upload,
                black_box(3.0e6),
                &mut served,
                &mut order,
            )
        })
    });
    served.fill(0.0);
    group.bench_function("sparse_mask", |b| {
        b.iter(|| {
            peer_allocation_sparse(
                black_box(&requested),
                &owners,
                &owner_upload,
                black_box(3.0e6),
                &mut served,
                &mut order,
                black_box(mask),
            );
            let mut m = mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                served[k] = 0.0;
            }
        })
    });
    group.finish();
}

fn run_config(mode: SimMode, kernel: SimKernel, hours: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.trace.horizon_seconds = hours * 3600.0;
    cfg.kernel = kernel;
    cfg
}

fn bench_sim_round(c: &mut Criterion) {
    // One full run divided by its round count approximates per-round
    // cost including every engine stage.
    let mut group = c.benchmark_group("sim_round");
    group.sample_size(10);
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        for (name, kernel) in [("scan", SimKernel::Scan), ("indexed", SimKernel::Indexed)] {
            group.bench_function(format!("{mode:?}/{name}"), |b| {
                b.iter(|| {
                    Simulator::new(run_config(mode, kernel, 2.0))
                        .expect("config is valid")
                        .run()
                        .expect("run succeeds")
                })
            });
        }
    }
    group.finish();
}

fn bench_simulator_e2e(c: &mut Criterion) {
    // The week-long experiment at a reduced horizon (12 h) so the bench
    // suite stays quick; `bench_sim --hours 168` measures the full week.
    let mut group = c.benchmark_group("simulator_e2e");
    group.sample_size(10);
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        for (name, kernel) in [("scan", SimKernel::Scan), ("indexed", SimKernel::Indexed)] {
            group.bench_function(format!("{mode:?}/{name}_12h"), |b| {
                b.iter(|| {
                    Simulator::new(run_config(mode, kernel, 12.0))
                        .expect("config is valid")
                        .run()
                        .expect("run succeeds")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_allocate_pool,
    bench_peer_allocation,
    bench_sim_round,
    bench_simulator_e2e
);
criterion_main!(benches);
