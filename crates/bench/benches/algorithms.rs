//! Criterion micro-benchmarks of the analysis and provisioning
//! algorithms: the per-interval controller work must stay far below the
//! hourly provisioning cadence (it runs once per interval for the whole
//! catalog).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters, PAPER_VM_BANDWIDTH};
use cloudmedia_cloud::scheduler::ChunkKey;
use cloudmedia_core::analysis::p2p::{p2p_capacity_hetero, UploadClass};
use cloudmedia_core::analysis::{
    capacity_demand, p2p_capacity_with, pooled_capacity_demand, DemandPooling, PsiEstimator,
};
use cloudmedia_core::channel::ChannelModel;
use cloudmedia_core::provisioning::storage::{ChunkDemand, StorageProblem};
use cloudmedia_core::provisioning::vm::VmProblem;
use cloudmedia_queueing::erlang::erlang_c;
use cloudmedia_queueing::mmm::{min_servers_for_sojourn, min_servers_for_sojourn_quantile};
use cloudmedia_queueing::mmmk::MmmkQueue;

fn bench_erlang(c: &mut Criterion) {
    c.bench_function("erlang_c_m100", |b| {
        b.iter(|| erlang_c(black_box(100), black_box(87.5)).unwrap())
    });
    c.bench_function("min_servers_heavy_load", |b| {
        b.iter(|| min_servers_for_sojourn(black_box(500.0), black_box(1.0 / 12.0), 300.0).unwrap())
    });
    c.bench_function("min_servers_quantile_heavy_load", |b| {
        b.iter(|| {
            min_servers_for_sojourn_quantile(black_box(500.0), black_box(1.0 / 12.0), 300.0, 0.05)
                .unwrap()
        })
    });
    c.bench_function("mmmk_blocking_k500", |b| {
        b.iter(|| {
            MmmkQueue::new(black_box(45.0), 1.0, 50, 500)
                .unwrap()
                .blocking_probability()
        })
    });
}

fn bench_capacity_analysis(c: &mut Criterion) {
    let channel = ChannelModel::paper_default(0, 0.15);
    c.bench_function("capacity_demand_20_chunks", |b| {
        b.iter(|| capacity_demand(black_box(&channel)).unwrap())
    });
    c.bench_function("pooled_capacity_demand_20_chunks", |b| {
        b.iter(|| pooled_capacity_demand(black_box(&channel)).unwrap())
    });
    c.bench_function("p2p_capacity_independent", |b| {
        b.iter(|| {
            p2p_capacity_with(
                black_box(&channel),
                34_000.0,
                PsiEstimator::Independent,
                DemandPooling::ChannelPooled,
            )
            .unwrap()
        })
    });
    c.bench_function("p2p_capacity_hetero_3_classes", |b| {
        let classes = [
            UploadClass {
                share: 0.5,
                upload: 20_000.0,
            },
            UploadClass {
                share: 0.3,
                upload: 40_000.0,
            },
            UploadClass {
                share: 0.2,
                upload: 80_000.0,
            },
        ];
        b.iter(|| {
            p2p_capacity_hetero(
                black_box(&channel),
                &classes,
                cloudmedia_core::analysis::P2pAnalysisOptions::default(),
            )
            .unwrap()
        })
    });
    c.bench_function("p2p_capacity_path_based", |b| {
        b.iter(|| {
            p2p_capacity_with(
                black_box(&channel),
                34_000.0,
                PsiEstimator::PathBased,
                DemandPooling::ChannelPooled,
            )
            .unwrap()
        })
    });
}

fn catalog_demands() -> Vec<ChunkDemand> {
    // 20 channels x 20 chunks of varied demand, the controller's real
    // per-interval input size.
    let mut out = Vec::new();
    for channel in 0..20 {
        for chunk in 0..20 {
            out.push(ChunkDemand {
                key: ChunkKey { channel, chunk },
                demand: ((channel * 7 + chunk * 3) % 13) as f64 * 0.2 * PAPER_VM_BANDWIDTH / 13.0,
            });
        }
    }
    out
}

fn bench_optimizers(c: &mut Criterion) {
    let demands = catalog_demands();
    let vms = paper_virtual_clusters();
    let nfs = paper_nfs_clusters();
    c.bench_function("vm_greedy_400_chunks", |b| {
        b.iter_batched(
            || demands.clone(),
            |d| {
                VmProblem {
                    demands: &d,
                    clusters: &vms,
                    budget_per_hour: 100.0,
                }
                .greedy()
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("vm_exact_400_chunks", |b| {
        b.iter_batched(
            || demands.clone(),
            |d| {
                VmProblem {
                    demands: &d,
                    clusters: &vms,
                    budget_per_hour: 100.0,
                }
                .exact()
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("storage_greedy_400_chunks", |b| {
        b.iter_batched(
            || demands.clone(),
            |d| {
                StorageProblem {
                    demands: &d,
                    clusters: &nfs,
                    chunk_bytes: 15_000_000,
                    budget_per_hour: 1.0,
                }
                .greedy()
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_erlang,
    bench_capacity_analysis,
    bench_optimizers
);
criterion_main!(benches);
