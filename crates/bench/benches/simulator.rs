//! Criterion benchmarks of simulator throughput: simulated hours per
//! wall-second at the paper's full scale, for both streaming modes.

use criterion::{criterion_group, criterion_main, Criterion};

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        group.bench_function(format!("{mode:?}_2h_paper_scale"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::paper_default(mode);
                cfg.trace.horizon_seconds = 2.0 * 3600.0;
                Simulator::new(cfg)
                    .expect("config is valid")
                    .run()
                    .expect("run succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
