//! Criterion benchmark of the quiescence engine's catch-up arithmetic:
//! the closed-form trajectory walk (what `epoch_enter`/`schedule_virtual`
//! pay once per download, and `epoch_materialize` pays once per
//! download at exit) against the k-round stepped advance loop it
//! replaces (what the normal path pays every round for every download).
//!
//! All three functions walk the *same* exact fixed-point recurrence —
//! `u = quantize_rate(b); b -= dequantize(u) * step` — because the
//! epoch engine's whole claim is bit-identity: the win is doing that
//! walk once per download instead of once per download per round, not
//! doing different arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudmedia_sim::simulator::{dequantize, quantize_rate};

/// The paper-default grid: 10 s rounds, 1.25 MB/s per-viewer ceiling,
/// 15 MB chunks (300 s of 50 kB/s video).
const STEP: f64 = 10.0;
const INV_STEP: f64 = 1.0 / STEP;
const VM_BW: f64 = 1.25e6;
const CHUNK_BYTES: f64 = 15.0e6;

/// One step of the exact service recurrence at ratio 1.0.
#[inline]
fn advance_once(b: f64) -> f64 {
    let u = quantize_rate(b, INV_STEP, VM_BW);
    b - dequantize(u) * STEP
}

/// Walks a download's full trajectory from `bytes`, returning its
/// length and the number of quantized-rate changes — the work
/// `schedule_virtual` does when a download is fused into the ring.
fn trajectory_walk(bytes: f64) -> (u32, u32) {
    let mut b = bytes;
    let mut len = 0u32;
    let mut changes = 0u32;
    let mut prev = u64::MAX;
    loop {
        let u = quantize_rate(b, INV_STEP, VM_BW);
        if u != prev {
            changes += 1;
        }
        prev = u;
        len += 1;
        let next = b - dequantize(u) * STEP;
        if next <= 1e-6 {
            return (len, changes);
        }
        b = next;
    }
}

/// Replays `k` rounds of the recurrence from `bytes` — the
/// materialization fast-forward for one download skipped `k` rounds.
fn catchup_replay(bytes: f64, k: u32) -> f64 {
    let mut b = bytes;
    for _ in 0..k {
        b = advance_once(b);
    }
    b
}

fn bench_catchup_kernel(c: &mut Criterion) {
    // A fresh paper-default chunk takes 12 rounds (11 at the VM ceiling
    // plus one 2.5 MB tail), so k = 11 is the longest exact catch-up a
    // single chunk can need.
    let k = trajectory_walk(CHUNK_BYTES).0 - 1;

    let mut group = c.benchmark_group("catchup_kernel");

    // Entry cost: fuse one download into its virtual schedule.
    group.bench_function("trajectory_walk", |b| {
        b.iter(|| trajectory_walk(black_box(CHUNK_BYTES)))
    });

    // Exit cost: fast-forward one download k rounds in one shot.
    group.bench_function("closed_form_catchup", |b| {
        b.iter(|| catchup_replay(black_box(CHUNK_BYTES), black_box(k)))
    });

    // What the stepped path pays for the same k rounds: the advance
    // loop touching every in-flight download every round (1024
    // downloads × k rounds per iteration — divide by 1024 to compare
    // per-download costs with the two one-shot walks above).
    const DOWNLOADS: usize = 1024;
    group.bench_function("stepped_advance_loop", |b| {
        let fresh: Vec<f64> = (0..DOWNLOADS)
            .map(|i| CHUNK_BYTES - (i % 7) as f64 * 1.0e5)
            .collect();
        let mut dl = fresh.clone();
        b.iter(|| {
            dl.copy_from_slice(&fresh);
            for _ in 0..k {
                for bytes in &mut dl {
                    let next = advance_once(*bytes);
                    *bytes = if next <= 1e-6 { CHUNK_BYTES } else { next };
                }
            }
            black_box(dl[0])
        })
    });

    group.finish();
}

criterion_group!(benches, bench_catchup_kernel);
criterion_main!(benches);
