//! Criterion benchmarks of the DES kernel's event schedulers: the
//! reference binary heap vs the hierarchical timing wheel, on the
//! operation mixes a discrete-event simulation actually issues.
//!
//! - `hold`: the classic hold model — pop the earliest event, schedule a
//!   replacement a random delay ahead — at a steady pending-set size.
//!   This is the regime where the heap pays `O(log n)` sifts per
//!   operation and the wheel stays O(1).
//! - `schedule_cancel`: timer churn — schedule a timeout, cancel it
//!   before it fires — the cancellable-timer pattern the admission
//!   component uses. The heap's lazy tombstones double its hash-set
//!   traffic; the wheel unlinks in O(1).
//! - `fifo_burst`: many events on one instant (synchronized component
//!   fan-out), stressing the FIFO tie-breaking path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudmedia_des::{ComponentId, Kernel, SchedulerKind};

const DEST: ComponentId = ComponentId(0);

/// Deterministic delay sequence (no external RNG in benches).
fn delays(n: usize) -> Vec<f64> {
    let mut state = 0x1234_5678_9ABC_DEF0_u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Delays in [0.125, 128.125) seconds — the spread of chunk
            // service times and provisioning timers.
            (state >> 40) as f64 * (128.0 / (1u64 << 24) as f64) + 0.125
        })
        .collect()
}

/// Builds a kernel pre-loaded with `pending` events.
fn preloaded(kind: SchedulerKind, pending: usize, delays: &[f64]) -> Kernel<u64> {
    let mut k = Kernel::with_scheduler(kind);
    for (i, d) in delays.iter().cycle().take(pending).enumerate() {
        k.schedule_in(*d, DEST, i as u64);
    }
    k
}

fn bench_hold(c: &mut Criterion) {
    let ds = delays(4096);
    for pending in [1usize << 10, 1 << 16] {
        let mut group = c.benchmark_group(format!("des_hold_{pending}"));
        for (name, kind) in [
            ("heap", SchedulerKind::BinaryHeap),
            ("wheel", SchedulerKind::TimingWheel),
        ] {
            let mut kernel = preloaded(kind, pending, &ds);
            let mut i = 0usize;
            group.bench_function(name, |b| {
                b.iter(|| {
                    let ev = kernel.pop().expect("hold model never drains");
                    i = (i + 1) % ds.len();
                    kernel.schedule_in(black_box(ds[i]), DEST, ev.payload);
                })
            });
        }
        group.finish();
    }
}

fn bench_schedule_cancel(c: &mut Criterion) {
    let ds = delays(4096);
    let pending = 1usize << 14;
    let mut group = c.benchmark_group("des_schedule_cancel");
    for (name, kind) in [
        ("heap", SchedulerKind::BinaryHeap),
        ("wheel", SchedulerKind::TimingWheel),
    ] {
        let mut kernel = preloaded(kind, pending, &ds);
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                // A timer that never fires: schedule far out, cancel.
                i = (i + 1) % ds.len();
                let id = kernel.schedule_in(black_box(1e4 + ds[i]), DEST, 7);
                assert!(kernel.cancel(black_box(id)));
                // Keep the clock moving like a real run.
                let ev = kernel.pop().expect("base load never drains");
                kernel.schedule_in(ds[i], DEST, ev.payload);
            })
        });
    }
    group.finish();
}

fn bench_fifo_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_fifo_burst");
    for (name, kind) in [
        ("heap", SchedulerKind::BinaryHeap),
        ("wheel", SchedulerKind::TimingWheel),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut kernel: Kernel<u64> = Kernel::with_scheduler(kind);
                for i in 0..256u64 {
                    kernel.schedule_at(black_box(5.0), DEST, i);
                }
                let mut last = 0;
                while let Some(ev) = kernel.pop() {
                    last = ev.payload;
                }
                black_box(last)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hold, bench_schedule_cancel, bench_fifo_burst);
criterion_main!(benches);
