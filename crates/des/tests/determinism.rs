//! Property tests of the kernel's determinism contract: the same
//! schedule produces the identical delivery sequence (event ids, times,
//! destinations), same-timestamp ties are delivered strictly in schedule
//! (FIFO) order, and cancellation never perturbs the order of the
//! surviving events.

use cloudmedia_des::{Component, ComponentId, Event, Kernel, SchedulerKind};
use proptest::prelude::*;

/// A schedule entry: delay bucket, destination, and a cancel coin.
fn schedule_strategy() -> impl Strategy<Value = Vec<(f64, usize, f64)>> {
    collection::vec((0.0..50.0f64, 0usize..4, 0.0..1.0f64), 1..200)
}

/// Quantizes delays onto a coarse grid so that same-timestamp ties are
/// frequent (the interesting case for FIFO stability).
fn grid(delay: f64) -> f64 {
    (delay * 0.5).floor() * 2.0
}

/// Replays a schedule and returns the delivery log.
fn deliver(schedule: &[(f64, usize, f64)], cancel_below: f64) -> Vec<(u64, f64, usize, usize)> {
    deliver_on(Kernel::new(), schedule, cancel_below)
}

/// Replays a schedule on a specific kernel and returns the delivery log.
fn deliver_on(
    mut kernel: Kernel<usize>,
    schedule: &[(f64, usize, f64)],
    cancel_below: f64,
) -> Vec<(u64, f64, usize, usize)> {
    let mut cancel_ids = Vec::new();
    for (i, &(delay, dest, coin)) in schedule.iter().enumerate() {
        let id = kernel.schedule_at(grid(delay), ComponentId(dest), i);
        if coin < cancel_below {
            cancel_ids.push(id);
        }
    }
    for id in cancel_ids {
        assert!(
            kernel.cancel(id),
            "first cancel of a pending event succeeds"
        );
    }
    let mut log = Vec::new();
    while let Some(ev) = kernel.pop() {
        log.push((ev.id.0, ev.time, ev.dest.0, ev.payload));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Same schedule ⇒ identical event sequence, run to run.
    #[test]
    fn identical_schedules_deliver_identically(schedule in schedule_strategy()) {
        let a = deliver(&schedule, 0.0);
        let b = deliver(&schedule, 0.0);
        prop_assert_eq!(a, b);
    }

    /// Delivery order is sorted by time, FIFO within a timestamp.
    #[test]
    fn delivery_is_time_ordered_and_fifo_on_ties(schedule in schedule_strategy()) {
        let log = deliver(&schedule, 0.0);
        prop_assert_eq!(log.len(), schedule.len());
        for w in log.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            prop_assert!(prev.1 <= next.1, "time order violated");
            if prev.1 == next.1 {
                // Same timestamp: schedule order (== event id order)
                // must be preserved.
                prop_assert!(
                    prev.0 < next.0,
                    "FIFO violated at t={}: id {} before id {}",
                    prev.1, prev.0, next.0
                );
            }
        }
    }

    /// Cancelling a subset never reorders or drops the survivors.
    #[test]
    fn cancellation_preserves_survivor_order(schedule in schedule_strategy()) {
        let full = deliver(&schedule, 0.0);
        let partial = deliver(&schedule, 0.4);
        // `partial` must be a subsequence of `full`.
        let mut it = full.iter();
        for ev in &partial {
            prop_assert!(
                it.any(|f| f == ev),
                "cancellation reordered survivor {ev:?}"
            );
        }
        // And the cancelled count matches the coins drawn below 0.4.
        let cancelled = schedule.iter().filter(|(_, _, coin)| *coin < 0.4).count();
        prop_assert_eq!(partial.len() + cancelled, full.len());
    }

    /// The determinism contract is a property of the kernel, not of the
    /// scheduler backend: the binary heap and the timing wheel deliver
    /// **identical** event sequences (ids, times, destinations, payloads)
    /// for the same schedule, with and without cancellations.
    #[test]
    fn heap_and_wheel_orderings_are_identical(schedule in schedule_strategy()) {
        for cancel_below in [0.0, 0.4, 0.9] {
            let heap = deliver_on(
                Kernel::with_scheduler(SchedulerKind::BinaryHeap),
                &schedule,
                cancel_below,
            );
            let wheel = deliver_on(
                Kernel::with_scheduler(SchedulerKind::TimingWheel),
                &schedule,
                cancel_below,
            );
            prop_assert_eq!(heap, wheel, "schedulers diverged at cancel rate {}", cancel_below);
        }
    }

    /// Same equivalence under an *interleaved* workload: schedules, pops,
    /// and cancellations mixed in data-dependent order, driven against
    /// both backends in lockstep.
    #[test]
    fn heap_and_wheel_agree_under_interleaving(
        ops in collection::vec((0u8..10, 0.0..200.0f64, 0usize..4), 1..300)
    ) {
        let mut heap: Kernel<usize> = Kernel::with_scheduler(SchedulerKind::BinaryHeap);
        let mut wheel: Kernel<usize> = Kernel::with_scheduler(SchedulerKind::TimingWheel);
        let mut live = Vec::new();
        for (i, &(op, delay, dest)) in ops.iter().enumerate() {
            if op < 6 {
                let h = heap.schedule_in(grid(delay), ComponentId(dest), i);
                let w = wheel.schedule_in(grid(delay), ComponentId(dest), i);
                prop_assert_eq!(h, w, "ids diverged");
                live.push(h);
            } else if op < 8 {
                if !live.is_empty() {
                    let id = live.swap_remove(i % live.len());
                    prop_assert_eq!(heap.cancel(id), wheel.cancel(id));
                }
            } else {
                let h = heap.pop();
                let w = wheel.pop();
                prop_assert_eq!(&h, &w, "pop diverged");
                if let Some(ev) = h {
                    live.retain(|&id| id != ev.id);
                }
            }
            prop_assert_eq!(heap.pending(), wheel.pending());
        }
        loop {
            let h = heap.pop();
            let w = wheel.pop();
            prop_assert_eq!(&h, &w, "drain diverged");
            if h.is_none() { break; }
        }
    }
}

/// A deterministic multi-component simulation: components whose handlers
/// draw from their own seeded RNGs produce identical outputs run to run
/// (the full determinism contract, not just queue ordering).
#[test]
fn seeded_component_simulation_is_deterministic() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Kick,
        Work(u64),
    }

    struct Worker {
        me: ComponentId,
        peer: ComponentId,
        rng: StdRng,
        log: Vec<(f64, u64)>,
        remaining: u32,
    }

    impl Component<Msg> for Worker {
        fn handle(&mut self, event: Event<Msg>, kernel: &mut Kernel<Msg>) {
            match event.payload {
                Msg::Kick | Msg::Work(_) => {
                    if let Msg::Work(x) = event.payload {
                        self.log.push((event.time, x));
                    }
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        let delay = self.rng.random::<f64>() * 3.0;
                        let x = self.rng.random::<u64>();
                        kernel.schedule_in(delay, self.peer, Msg::Work(x));
                    }
                }
            }
        }
    }

    let run = |seed: u64| -> Vec<Vec<(f64, u64)>> {
        let mut kernel: Kernel<Msg> = Kernel::new();
        let ids = [ComponentId(0), ComponentId(1)];
        let mut workers = vec![
            Worker {
                me: ids[0],
                peer: ids[1],
                rng: StdRng::seed_from_u64(seed),
                log: Vec::new(),
                remaining: 50,
            },
            Worker {
                me: ids[1],
                peer: ids[0],
                rng: StdRng::seed_from_u64(seed ^ 0xABCD),
                log: Vec::new(),
                remaining: 50,
            },
        ];
        kernel.schedule_at(0.0, ids[0], Msg::Kick);
        while let Some(ev) = kernel.pop() {
            let w = &mut workers[ev.dest.0];
            debug_assert_eq!(w.me, ev.dest);
            w.handle(ev, &mut kernel);
        }
        workers.into_iter().map(|w| w.log).collect()
    };

    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seeds, same event schedule, same outputs");
    assert!(!a[0].is_empty() && !a[1].is_empty(), "work happened");
    let c = run(43);
    assert_ne!(a, c, "different seeds diverge");
}
