//! The event queue and logical clock.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::wheel::TimingWheel;

/// Identifier of a component (an event destination). Scenario engines
/// assign these; the kernel only routes on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub usize);

/// Identifier of a scheduled event, usable to cancel it before delivery.
/// Events are numbered sequentially from 0 in schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub u64);

/// Which event-queue scheduler backs a [`Kernel`].
///
/// Both schedulers implement the identical delivery contract — strict
/// `(time, sequence number)` order, FIFO within a timestamp — and are
/// property-tested to produce bit-identical event sequences for the same
/// schedule. They differ only in cost model:
///
/// - [`SchedulerKind::BinaryHeap`]: `O(log n)` sift work per schedule and
///   pop, lazy cancellation through a tombstone set. Kept as the simple
///   reference implementation and benchmark baseline.
/// - [`SchedulerKind::TimingWheel`] (default): the hierarchical
///   timing-wheel scheduler (`src/wheel.rs`) — O(1) amortized
///   schedule/cancel/pop over slab-allocated events with free-list
///   recycling, the design high-event-rate simulators (ns-3, OMNeT++)
///   converged on.
///
/// ```
/// use cloudmedia_des::{ComponentId, Kernel, SchedulerKind};
///
/// // Same schedule on both backends → identical delivery order.
/// const DEST: ComponentId = ComponentId(0);
/// let mut deliveries: Vec<Vec<(f64, &str)>> = Vec::new();
/// for kind in [SchedulerKind::BinaryHeap, SchedulerKind::TimingWheel] {
///     let mut kernel: Kernel<&str> = Kernel::with_scheduler(kind);
///     assert_eq!(kernel.scheduler(), kind);
///     kernel.schedule_at(3.0, DEST, "provision");
///     kernel.schedule_at(1.0, DEST, "arrival");
///     kernel.schedule_at(1.0, DEST, "arrival-tie"); // FIFO on equal times
///     let mut seen = Vec::new();
///     while let Some(event) = kernel.pop() {
///         seen.push((event.time, event.payload));
///     }
///     deliveries.push(seen);
/// }
/// assert_eq!(deliveries[0], deliveries[1]);
/// assert_eq!(deliveries[0][0].1, "arrival");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Binary-heap priority queue with lazy cancellation.
    BinaryHeap,
    /// Hierarchical timing wheel with eager O(1) cancellation.
    #[default]
    TimingWheel,
}

/// A delivered event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event<E> {
    /// The event's identifier (its schedule sequence number).
    pub id: EventId,
    /// Delivery time on the logical clock.
    pub time: f64,
    /// Destination component.
    pub dest: ComponentId,
    /// The typed payload.
    pub payload: E,
}

/// Heap entry. Ordered so that `BinaryHeap` (a max-heap) pops the
/// *earliest* time first, and among equal times the *lowest* sequence
/// number first — i.e. FIFO within a timestamp. The sequence number is
/// a total tie-breaker, so the ordering is total and never falls back to
/// heap insertion internals.
#[derive(Debug)]
struct Entry<E> {
    time: f64,
    seq: u64,
    dest: ComponentId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the max-heap must surface the smallest (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The binary-heap backend: the original queue implementation, preserved
/// verbatim as the reference scheduler.
#[derive(Debug)]
struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids currently scheduled and not yet delivered or cancelled.
    pending_ids: HashSet<u64>,
    /// Ids cancelled before delivery; lazily swept from the heap.
    cancelled: HashSet<u64>,
}

impl<E> HeapQueue<E> {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            pending_ids: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// Drops cancelled entries sitting at the top of the heap.
    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

/// The scheduler backend selected at kernel construction.
#[derive(Debug)]
enum Queue<E> {
    Heap(HeapQueue<E>),
    Wheel(TimingWheel<E>),
}

/// The deterministic event kernel: logical clock + event queue +
/// cancellation.
///
/// See the crate docs for the determinism contract. The kernel is generic
/// over the payload type `E`, so one simulation's whole event vocabulary
/// is a single enum and dispatch is exhaustively type-checked. The queue
/// backend is chosen by [`SchedulerKind`] at construction
/// ([`Kernel::with_scheduler`]); both backends deliver the identical
/// event sequence for the same schedule.
#[derive(Debug)]
pub struct Kernel<E> {
    clock: f64,
    queue: Queue<E>,
    /// Next schedule sequence number (doubles as the event id).
    next_seq: u64,
    /// Events delivered so far.
    delivered: u64,
    /// Events cancelled before delivery.
    cancelled: u64,
    /// High-water mark of the pending-event count.
    peak_pending: usize,
}

impl<E> Default for Kernel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Kernel<E> {
    /// Creates an empty kernel with the clock at 0 and the default
    /// scheduler ([`SchedulerKind::TimingWheel`]).
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::default())
    }

    /// Creates an empty kernel backed by the given scheduler.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        Self {
            clock: 0.0,
            queue: match kind {
                SchedulerKind::BinaryHeap => Queue::Heap(HeapQueue::new()),
                SchedulerKind::TimingWheel => Queue::Wheel(TimingWheel::new()),
            },
            next_seq: 0,
            delivered: 0,
            cancelled: 0,
            peak_pending: 0,
        }
    }

    /// The scheduler backing this kernel.
    pub fn scheduler(&self) -> SchedulerKind {
        match self.queue {
            Queue::Heap(_) => SchedulerKind::BinaryHeap,
            Queue::Wheel(_) => SchedulerKind::TimingWheel,
        }
    }

    /// The current logical time. Advances only through [`Kernel::pop`].
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Schedules `payload` for delivery to `dest` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is NaN or earlier than the current clock —
    /// scheduling into the past would break clock monotonicity, and a
    /// silent clamp would hide the modeling bug that produced it.
    pub fn schedule_at(&mut self, at: f64, dest: ComponentId, payload: E) -> EventId {
        assert!(!at.is_nan(), "event time must not be NaN");
        assert!(
            at >= self.clock,
            "cannot schedule into the past: {at} < clock {}",
            self.clock
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.queue {
            Queue::Heap(q) => {
                q.pending_ids.insert(seq);
                q.heap.push(Entry {
                    time: at,
                    seq,
                    dest,
                    payload,
                });
            }
            Queue::Wheel(w) => w.schedule(at, seq, dest, payload),
        }
        self.peak_pending = self.peak_pending.max(self.pending());
        EventId(seq)
    }

    /// Schedules `payload` for delivery to `dest` after `delay` seconds.
    /// A zero delay delivers at the current instant, after every event
    /// already scheduled for it (FIFO).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, dest: ComponentId, payload: E) -> EventId {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule_at(self.clock + delay, dest, payload)
    }

    /// Cancels a scheduled event (a cancellable timer). Returns `true` if
    /// the event was still pending; cancelling an already-delivered,
    /// already-cancelled, or never-scheduled event returns `false` and
    /// has no effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let hit = match &mut self.queue {
            Queue::Heap(q) => {
                if q.pending_ids.remove(&id.0) {
                    // The entry stays in the heap until it surfaces;
                    // `skip_cancelled` sweeps it then.
                    q.cancelled.insert(id.0);
                    true
                } else {
                    false
                }
            }
            Queue::Wheel(w) => w.cancel(id.0),
        };
        self.cancelled += u64::from(hit);
        hit
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<f64> {
        match &mut self.queue {
            Queue::Heap(q) => {
                q.skip_cancelled();
                q.heap.peek().map(|e| e.time)
            }
            Queue::Wheel(w) => w.peek_time(),
        }
    }

    /// Pops the next event and advances the clock to its time.
    ///
    /// Delivery order is the lexicographic order of `(time, sequence
    /// number)`: strictly increasing time, and FIFO among events
    /// scheduled for the same instant. The sequence number makes the
    /// order total, so two runs with the same schedule sequence pop the
    /// same sequence of events — the foundation of the determinism
    /// contract. The order is a property of the contract, not the
    /// backend: both schedulers produce it bit-identically.
    pub fn pop(&mut self) -> Option<Event<E>> {
        let event = match &mut self.queue {
            Queue::Heap(q) => {
                q.skip_cancelled();
                let entry = q.heap.pop()?;
                q.pending_ids.remove(&entry.seq);
                Event {
                    id: EventId(entry.seq),
                    time: entry.time,
                    dest: entry.dest,
                    payload: entry.payload,
                }
            }
            Queue::Wheel(w) => {
                let e = w.pop()?;
                Event {
                    id: EventId(e.seq),
                    time: e.time,
                    dest: e.dest,
                    payload: e.payload,
                }
            }
        };
        debug_assert!(
            event.time >= self.clock,
            "queue order preserves monotonicity"
        );
        self.clock = event.time;
        self.delivered += 1;
        Some(event)
    }

    /// Number of pending (scheduled, not yet delivered or cancelled)
    /// events.
    pub fn pending(&self) -> usize {
        match &self.queue {
            Queue::Heap(q) => q.pending_ids.len(),
            Queue::Wheel(w) => w.pending(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Total events scheduled so far (delivered, pending, or cancelled).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Total events delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Total events cancelled before delivery.
    pub fn cancelled_count(&self) -> u64 {
        self.cancelled
    }

    /// High-water mark of the pending-event count over the kernel's
    /// lifetime — the queue depth a scheduler backend actually had to
    /// sustain.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Slab slots the timing wheel recycled through its free list
    /// (0 for the binary-heap backend, which has no arena).
    pub fn recycled_count(&self) -> u64 {
        match &self.queue {
            Queue::Heap(_) => 0,
            Queue::Wheel(w) => w.recycled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ComponentId = ComponentId(0);
    const B: ComponentId = ComponentId(1);

    /// Both backends, so every contract test runs against each.
    fn kernels<E>() -> Vec<Kernel<E>> {
        vec![
            Kernel::with_scheduler(SchedulerKind::BinaryHeap),
            Kernel::with_scheduler(SchedulerKind::TimingWheel),
        ]
    }

    #[test]
    fn default_scheduler_is_the_wheel() {
        let k: Kernel<()> = Kernel::new();
        assert_eq!(k.scheduler(), SchedulerKind::TimingWheel);
        let k: Kernel<()> = Kernel::with_scheduler(SchedulerKind::BinaryHeap);
        assert_eq!(k.scheduler(), SchedulerKind::BinaryHeap);
    }

    #[test]
    fn pops_in_time_order() {
        for mut k in kernels::<u32>() {
            k.schedule_at(5.0, A, 1);
            k.schedule_at(1.0, A, 2);
            k.schedule_at(3.0, B, 3);
            let order: Vec<u32> = std::iter::from_fn(|| k.pop()).map(|e| e.payload).collect();
            assert_eq!(order, vec![2, 3, 1]);
            assert_eq!(k.now(), 5.0);
        }
    }

    #[test]
    fn same_time_events_are_fifo() {
        for mut k in kernels::<u32>() {
            for i in 0..100 {
                k.schedule_at(7.0, A, i);
            }
            let order: Vec<u32> = std::iter::from_fn(|| k.pop()).map(|e| e.payload).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_delay_delivers_after_existing_same_instant_events() {
        for mut k in kernels::<&'static str>() {
            k.schedule_at(2.0, A, "first");
            k.schedule_at(2.0, A, "second");
            let e = k.pop().unwrap();
            assert_eq!(e.payload, "first");
            // Now at t=2: a zero-delay event lands after "second".
            k.schedule_in(0.0, B, "third");
            assert_eq!(k.pop().unwrap().payload, "second");
            assert_eq!(k.pop().unwrap().payload, "third");
        }
    }

    #[test]
    fn clock_is_monotonic_and_starts_at_zero() {
        for mut k in kernels::<()>() {
            assert_eq!(k.now(), 0.0);
            k.schedule_at(10.0, A, ());
            k.schedule_at(10.0, A, ());
            let mut last = 0.0;
            while let Some(e) = k.pop() {
                assert!(e.time >= last);
                last = e.time;
            }
            assert_eq!(k.now(), 10.0);
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut k: Kernel<()> = Kernel::new();
        k.schedule_at(5.0, A, ());
        k.pop();
        k.schedule_at(1.0, A, ());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_time_panics() {
        let mut k: Kernel<()> = Kernel::new();
        k.schedule_at(f64::NAN, A, ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        for mut k in kernels::<u32>() {
            let a = k.schedule_at(1.0, A, 1);
            let b = k.schedule_at(2.0, A, 2);
            k.schedule_at(3.0, A, 3);
            assert!(k.cancel(b));
            assert!(!k.cancel(b), "double cancel reports false");
            assert_eq!(k.pending(), 2);
            let order: Vec<u32> = std::iter::from_fn(|| k.pop()).map(|e| e.payload).collect();
            assert_eq!(order, vec![1, 3]);
            assert!(!k.cancel(a), "cancelling a delivered event is a no-op");
        }
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        for mut k in kernels::<()>() {
            assert!(!k.cancel(EventId(42)));
        }
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        for mut k in kernels::<u32>() {
            let head = k.schedule_at(1.0, A, 1);
            k.schedule_at(5.0, A, 2);
            k.cancel(head);
            assert_eq!(k.peek_time(), Some(5.0));
            assert_eq!(k.pop().unwrap().payload, 2);
        }
    }

    #[test]
    fn counters_track_lifecycle() {
        for mut k in kernels::<()>() {
            let a = k.schedule_at(1.0, A, ());
            k.schedule_at(2.0, A, ());
            assert_eq!(k.scheduled_count(), 2);
            assert_eq!(k.pending(), 2);
            k.cancel(a);
            assert_eq!(k.pending(), 1);
            assert_eq!(k.cancelled_count(), 1);
            k.cancel(a);
            assert_eq!(k.cancelled_count(), 1, "failed cancels are not counted");
            k.pop();
            assert_eq!(k.delivered_count(), 1);
            assert!(k.is_empty());
            assert_eq!(k.peak_pending(), 2, "high-water mark survives drain");
        }
    }

    /// The wheel reports free-list recycling; the heap (no arena)
    /// reports zero. Peak pending tracks the deepest the queue ever got,
    /// not the current depth.
    #[test]
    fn health_counters_expose_wheel_internals() {
        let mut w: Kernel<u32> = Kernel::with_scheduler(SchedulerKind::TimingWheel);
        for i in 0..8 {
            w.schedule_at(f64::from(i) + 1.0, A, i);
        }
        while w.pop().is_some() {}
        assert_eq!(w.peak_pending(), 8);
        // Delivered slots went to the free list; new events reuse them.
        for i in 0..4 {
            w.schedule_at(100.0 + f64::from(i), A, i);
        }
        assert!(w.recycled_count() >= 4, "recycled {}", w.recycled_count());

        let mut h: Kernel<u32> = Kernel::with_scheduler(SchedulerKind::BinaryHeap);
        h.schedule_at(1.0, A, 0);
        h.pop();
        h.schedule_at(2.0, A, 1);
        assert_eq!(h.recycled_count(), 0);
    }

    /// The two backends deliver bit-identical sequences for an
    /// interleaved schedule/pop/cancel workload (the exhaustive random
    /// version lives in `tests/determinism.rs`).
    #[test]
    fn backends_agree_on_interleaved_workload() {
        let mut heap: Kernel<u64> = Kernel::with_scheduler(SchedulerKind::BinaryHeap);
        let mut wheel: Kernel<u64> = Kernel::with_scheduler(SchedulerKind::TimingWheel);
        let mut state = 0xFEED_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut live: Vec<EventId> = Vec::new();
        for round in 0..2000u64 {
            let op = next() % 10;
            if op < 6 {
                let delay = (next() % 1000) as f64 * 0.037;
                let dest = ComponentId((next() % 3) as usize);
                let ha = heap.schedule_in(delay, dest, round);
                let wa = wheel.schedule_in(delay, dest, round);
                assert_eq!(ha, wa);
                live.push(ha);
            } else if op < 8 {
                if !live.is_empty() {
                    let id = live.swap_remove((next() as usize) % live.len());
                    assert_eq!(heap.cancel(id), wheel.cancel(id));
                }
            } else {
                let he = heap.pop();
                let we = wheel.pop();
                match (&he, &we) {
                    (Some(h), Some(w)) => {
                        assert_eq!(h, w);
                        live.retain(|&id| id != h.id);
                    }
                    (None, None) => {}
                    _ => panic!("backends diverged: {he:?} vs {we:?}"),
                }
            }
        }
        loop {
            let he = heap.pop();
            let we = wheel.pop();
            assert_eq!(he, we);
            if he.is_none() {
                break;
            }
        }
    }
}
