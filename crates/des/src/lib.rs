//! `cloudmedia-des`: a deterministic discrete-event simulation kernel.
//!
//! The fluid-round simulator in `cloudmedia-sim` advances the whole world
//! in fixed provisioning rounds, which cannot express per-request latency,
//! VM boot delays, or failures at their natural timestamps. This crate is
//! the substrate for the event-driven engine that can: a minimal,
//! dependency-free kernel in the style of component/event-queue DES
//! frameworks (dslab, SimPy, CloudSim), stripped to exactly what the
//! CloudMedia scenario engine needs.
//!
//! - [`kernel::Kernel`]: a monotonic `f64` logical clock plus an event
//!   queue. Events scheduled for the same instant are delivered in
//!   schedule order (stable FIFO tie-breaking via sequence numbers), and
//!   timers are cancellable in O(1) amortized time. The queue backend is
//!   selected by [`kernel::SchedulerKind`]: the default hierarchical
//!   timing wheel (O(1) amortized schedule/cancel/pop over
//!   slab-allocated events; see `src/wheel.rs` for the design), or the
//!   reference binary heap. Both deliver bit-identical event sequences.
//! - [`component::Component`]: the typed handler trait. A scenario engine
//!   owns its components as concrete struct fields and dispatches each
//!   popped [`kernel::Event`] to the component named by its destination
//!   id, handing the handler mutable access to the kernel so it can
//!   schedule follow-up events. Components communicate *only* through
//!   events; they never reach into each other's state.
//!
//! # Determinism contract
//!
//! A simulation built on this kernel is reproducible bit-for-bit across
//! runs and platforms as long as its components honor three rules:
//!
//! 1. **No wall-clock time.** The only clock is [`kernel::Kernel::now`],
//!    which advances exclusively through event delivery. The kernel never
//!    reads `std::time`.
//! 2. **Seeded randomness only.** The kernel itself draws no random
//!    numbers. Components that need randomness must own explicitly seeded
//!    generators and draw from them *inside event handlers*, so the draw
//!    sequence is a pure function of the (deterministic) event order.
//! 3. **No iteration over unordered collections** when the iteration
//!    order can influence scheduling or RNG draws. Event delivery order
//!    is fully determined by `(time, sequence number)`: ties broken by
//!    schedule order, never by heap internals — [`kernel::Kernel::pop`]
//!    documents the ordering proof.
//!
//! Under these rules, the same seed produces the identical event
//! schedule, the identical handler execution order, and therefore
//! identical outputs — the property `cloudmedia-sim`'s event-driven
//! engine relies on and its regression tests enforce.
//!
//! # Accuracy vs the round engines
//!
//! The event-driven CloudMedia engine built on this kernel is *not*
//! bit-identical to the `Scan`/`Indexed` round engines — it is a
//! different microscopic model (per-request service times instead of
//! fluid bandwidth sharing; an independently sampled arrival stream).
//! The two models agree in the mean: over a steady-state horizon both are
//! driven by the same viewing-model Markov chain, the same diurnal
//! arrival-rate profile, and the identical provisioning control path
//! (tracker → controller → broker), so per-channel cloud bandwidth and
//! rental cost converge to the same equilibria. The documented tolerance
//! (see `cloudmedia-sim`'s `event_driven` module and its
//! `des_vs_indexed` regression test) is a *relative-mean* bound, not a
//! per-sample one.
//!
//! # Example
//!
//! ```
//! use cloudmedia_des::{Component, ComponentId, Event, Kernel};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Msg {
//!     Ping,
//!     Pong,
//! }
//!
//! struct Ponger {
//!     me: ComponentId,
//!     peer: ComponentId,
//!     pongs: u32,
//! }
//!
//! impl Component<Msg> for Ponger {
//!     fn handle(&mut self, event: Event<Msg>, kernel: &mut Kernel<Msg>) {
//!         if event.payload == Msg::Ping && self.pongs < 3 {
//!             self.pongs += 1;
//!             kernel.schedule_in(1.0, self.peer, Msg::Pong);
//!         }
//!     }
//! }
//!
//! let mut kernel = Kernel::new();
//! let ponger_id = ComponentId(0);
//! let mut ponger = Ponger { me: ponger_id, peer: ComponentId(1), pongs: 0 };
//! kernel.schedule_at(0.0, ponger_id, Msg::Ping);
//! while let Some(ev) = kernel.pop() {
//!     match ev.dest {
//!         id if id == ponger.me => ponger.handle(ev, &mut kernel),
//!         _ => {} // the peer, were it registered
//!     }
//! }
//! assert_eq!(ponger.pongs, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod component;
pub mod kernel;
mod wheel;

pub use component::Component;
pub use kernel::{ComponentId, Event, EventId, Kernel, SchedulerKind};
