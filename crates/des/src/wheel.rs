//! Hierarchical timing-wheel event scheduler.
//!
//! The binary-heap queue in [`crate::kernel`] pays `O(log n)` sift work
//! on every schedule and pop, plus hash-set traffic for its lazy
//! cancellation protocol. Calendar-queue and timing-wheel schedulers (the
//! design ns-3, OMNeT++, and the Linux/tokio timer subsystems converged
//! on) replace that with O(1) amortized bucket operations. This module is
//! the workspace's instance of that design, tuned for the deterministic
//! kernel's contract:
//!
//! - **Slab/arena event storage with free-list recycling.** Every pending
//!   event lives in one slot of a single `Vec`; delivered and cancelled
//!   slots go on an intrusive free list and are reused, so a steady-state
//!   simulation performs no per-event heap allocation.
//! - **Hierarchical wheel.** Logical time is quantized into ticks
//!   (`resolution` seconds each). `LEVELS` levels of `SLOTS` slots
//!   each cover the full 64-bit tick range: level `l` groups ticks by
//!   bits `[6l, 6l+6)`, exactly like the Linux timer wheel. An event is
//!   filed at the level of the *highest* tick-bit group in which it
//!   differs from the wheel's current position, and cascades toward
//!   level 0 as the clock approaches it — at most `LEVELS` re-files
//!   over its lifetime, i.e. O(1) amortized.
//! - **Exact FIFO order preserved.** A level-0 slot holds exactly one
//!   tick's events. When the wheel advances onto it, the slot drains into
//!   a `ready` run sorted by `(time, sequence number)` — the identical
//!   total order the binary heap pops — so the two schedulers deliver
//!   bit-identical event sequences (property-tested in
//!   `crates/des/tests`).
//! - **O(1) cancellation.** A multiplicative-hash index maps sequence
//!   numbers to slab slots; cancelling unlinks the slot from its wheel
//!   bucket's doubly-linked list (or marks it if already staged in the
//!   ready run) and recycles it immediately — no tombstones survive in
//!   the structure.
//!
//! The occupancy of every level is mirrored in a 64-bit bitmap, so
//! advancing across an arbitrarily long empty stretch of ticks costs a
//! handful of `trailing_zeros` instructions instead of a per-tick scan.

use crate::kernel::ComponentId;

/// Bits of the tick index consumed per wheel level (64 slots).
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed to cover every 64-bit tick (`ceil(64 / 6)`).
const LEVELS: usize = 11;
/// Null link in the slab's intrusive lists.
const NIL: u32 = u32::MAX;

/// Default tick width, seconds. A power of two so tick boundaries are
/// exact for binary-friendly timestamps; fine enough that same-tick
/// collisions (which cost a small sort on drain) stay rare at the event
/// densities the CloudMedia engine produces.
pub const DEFAULT_RESOLUTION: f64 = 1.0 / 1024.0;

/// Where a slab slot currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Linked into a wheel bucket.
    InWheel,
    /// Staged in the sorted ready run, awaiting pop.
    Ready,
    /// Cancelled while staged in the ready run; skipped and recycled at
    /// pop time (wheel-resident slots are recycled eagerly instead).
    CancelledInReady,
    /// On the free list.
    Free,
}

/// One arena slot: the event payload plus its intrusive list links.
#[derive(Debug)]
struct Slot<E> {
    time: f64,
    seq: u64,
    dest: ComponentId,
    /// `None` only while the slot is free.
    payload: Option<E>,
    /// Tick the event is filed under.
    tick: u64,
    /// Wheel bucket links (`next` doubles as the free-list link).
    prev: u32,
    next: u32,
    state: SlotState,
}

/// Sentinel for an empty [`SeqMap`] slot (`next_seq` counts up from 0,
/// so `u64::MAX` is unreachable as a real sequence number).
const EMPTY_KEY: u64 = u64::MAX;

/// Minimal open-addressed `u64 → u32` map (multiplicative hash, linear
/// probing) for the sequence-number → slab-slot index that backs
/// cancellation.
///
/// The map is **insert-only on the hot path**: a pop never touches it
/// (that would be a second random cache miss per event). Instead,
/// entries for delivered or cancelled events go *stale* and are detected
/// at lookup by validating against the slab (`slab[slot].seq == key`
/// and the slot is live — sequence numbers are never reused, so a match
/// is conclusive). Stale entries are swept out whenever the table would
/// otherwise grow: a rebuild keeps only the entries the caller's
/// validator confirms live and only doubles capacity when the live load
/// is genuinely high. Sweeps are O(capacity) per O(capacity) inserts —
/// amortized O(1).
#[derive(Debug)]
struct SeqMap {
    /// Interleaved `(key, slot)` entries — one cache line per probe.
    entries: Vec<(u64, u32)>,
    /// `capacity - 1` (capacity is a power of two).
    mask: usize,
    /// Occupied entries, live or stale.
    len: usize,
}

impl SeqMap {
    fn new() -> Self {
        const CAP: usize = 64;
        Self {
            entries: vec![(EMPTY_KEY, 0); CAP],
            mask: CAP - 1,
            len: 0,
        }
    }

    #[inline]
    fn ideal(key: u64, mask: usize) -> usize {
        // Fibonacci hashing: sequential keys scatter, upper bits decide.
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize & mask
    }

    /// Drops stale entries (those the validator rejects), doubling
    /// capacity only if the surviving load still exceeds ¼.
    fn sweep(&mut self, live: impl Fn(u64, u32) -> bool) {
        let survivors: Vec<(u64, u32)> = self
            .entries
            .iter()
            .filter(|&&(k, v)| k != EMPTY_KEY && live(k, v))
            .copied()
            .collect();
        let mut cap = self.mask + 1;
        while survivors.len() * 4 > cap {
            cap *= 2;
        }
        self.entries.clear();
        self.entries.resize(cap, (EMPTY_KEY, 0));
        self.mask = cap - 1;
        self.len = survivors.len();
        for (k, v) in survivors {
            let mut i = Self::ideal(k, self.mask);
            while self.entries[i].0 != EMPTY_KEY {
                i = (i + 1) & self.mask;
            }
            self.entries[i] = (k, v);
        }
    }

    /// Inserts a fresh key (sequence numbers are unique, so the key is
    /// never already present). `live` validates entries if a sweep is
    /// needed.
    fn insert(&mut self, key: u64, val: u32, live: impl Fn(u64, u32) -> bool) {
        if (self.len + 1) * 2 > self.mask + 1 {
            self.sweep(live);
        }
        let mut i = Self::ideal(key, self.mask);
        loop {
            if self.entries[i].0 == EMPTY_KEY {
                self.entries[i] = (key, val);
                self.len += 1;
                return;
            }
            debug_assert_ne!(self.entries[i].0, key, "duplicate sequence number");
            i = (i + 1) & self.mask;
        }
    }

    /// Looks up a key. The caller validates the returned slot against
    /// the slab (the entry may be stale).
    fn get(&self, key: u64) -> Option<u32> {
        let mut i = Self::ideal(key, self.mask);
        loop {
            let (k, v) = self.entries[i];
            if k == EMPTY_KEY {
                return None;
            }
            if k == key {
                return Some(v);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key` if present (backward-shift deletion keeps probe
    /// chains intact without tombstones). Used by the cancel path so
    /// timer churn does not accumulate stale entries; delivered events
    /// skip this and are swept lazily instead.
    fn remove(&mut self, key: u64) {
        let mut i = Self::ideal(key, self.mask);
        loop {
            let k = self.entries[i].0;
            if k == EMPTY_KEY {
                return;
            }
            if k == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        self.len -= 1;
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let entry = self.entries[j];
            if entry.0 == EMPTY_KEY {
                break;
            }
            let h = Self::ideal(entry.0, self.mask);
            // Move `j` into the hole unless its ideal slot lies strictly
            // inside (hole, j] — moving would break its own chain.
            let in_between = if hole <= j {
                hole < h && h <= j
            } else {
                h > hole || h <= j
            };
            if !in_between {
                self.entries[hole] = entry;
                hole = j;
            }
        }
        self.entries[hole].0 = EMPTY_KEY;
    }
}

/// A popped event, in the wheel's internal representation.
#[derive(Debug)]
pub(crate) struct WheelEvent<E> {
    pub(crate) time: f64,
    pub(crate) seq: u64,
    pub(crate) dest: ComponentId,
    pub(crate) payload: E,
}

/// The hierarchical timing wheel. See the module docs for the design.
#[derive(Debug)]
pub struct TimingWheel<E> {
    /// `1 / resolution`, for the hot tick computation.
    inv_resolution: f64,
    /// The wheel's current tick position. Only ever advances onto ticks
    /// that hold (or held) events, so it may run ahead of the kernel
    /// clock between deliveries — never past a pending event.
    current: u64,
    /// Doubly-linked bucket heads, `heads[level][slot]`.
    heads: Vec<[u32; SLOTS]>,
    /// Per-level slot-occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// The arena.
    slab: Vec<Slot<E>>,
    /// Head of the free list (threaded through `Slot::next`).
    free: u32,
    /// Pending sequence number → slab slot.
    index: SeqMap,
    /// The current tick's events, sorted by `(time, seq)`; delivered
    /// front to back through `ready_cursor`.
    ready: Vec<u32>,
    ready_cursor: usize,
    /// Live (scheduled, not yet delivered or cancelled) events.
    pending: usize,
    /// Allocations served from the free list instead of growing the
    /// slab — how hard the arena recycling is working.
    recycled: u64,
}

impl<E> TimingWheel<E> {
    /// Creates an empty wheel with the [`DEFAULT_RESOLUTION`].
    pub fn new() -> Self {
        Self::with_resolution(DEFAULT_RESOLUTION)
    }

    /// Creates an empty wheel with `resolution` seconds per tick.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not finite and positive.
    pub fn with_resolution(resolution: f64) -> Self {
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "wheel resolution must be positive, got {resolution}"
        );
        Self {
            inv_resolution: 1.0 / resolution,
            current: 0,
            heads: vec![[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            slab: Vec::new(),
            free: NIL,
            index: SeqMap::new(),
            ready: Vec::new(),
            ready_cursor: 0,
            pending: 0,
            recycled: 0,
        }
    }

    /// Number of pending events.
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// Allocations served by free-list recycling.
    pub(crate) fn recycled(&self) -> u64 {
        self.recycled
    }

    fn tick_of(&self, time: f64) -> u64 {
        // `time` is validated non-negative and non-NaN by the kernel; the
        // cast saturates enormous times at u64::MAX, which still orders
        // correctly against every realistic tick.
        (time * self.inv_resolution) as u64
    }

    fn alloc(&mut self, time: f64, seq: u64, dest: ComponentId, payload: E, tick: u64) -> u32 {
        if self.free != NIL {
            self.recycled += 1;
            let idx = self.free;
            let slot = &mut self.slab[idx as usize];
            self.free = slot.next;
            slot.time = time;
            slot.seq = seq;
            slot.dest = dest;
            slot.payload = Some(payload);
            slot.tick = tick;
            slot.prev = NIL;
            slot.next = NIL;
            slot.state = SlotState::Free; // caller sets the real state
            idx
        } else {
            let idx = u32::try_from(self.slab.len()).expect("slab capacity exceeds u32");
            self.slab.push(Slot {
                time,
                seq,
                dest,
                payload: Some(payload),
                tick,
                prev: NIL,
                next: NIL,
                state: SlotState::Free,
            });
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        let free = self.free;
        let slot = &mut self.slab[idx as usize];
        slot.payload = None;
        slot.state = SlotState::Free;
        slot.prev = NIL;
        slot.next = free;
        self.free = idx;
    }

    /// The level an event filed at `tick` belongs to, given the wheel's
    /// current position: the highest 6-bit group in which they differ.
    fn level_for(&self, tick: u64) -> usize {
        let diff = tick ^ self.current;
        debug_assert!(diff != 0, "same-tick events go straight to ready");
        ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize
    }

    fn slot_for(tick: u64, level: usize) -> usize {
        ((tick >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
    }

    fn link(&mut self, idx: u32, level: usize, slot: usize) {
        let head = self.heads[level][slot];
        {
            let s = &mut self.slab[idx as usize];
            s.prev = NIL;
            s.next = head;
            s.state = SlotState::InWheel;
        }
        if head != NIL {
            self.slab[head as usize].prev = idx;
        }
        self.heads[level][slot] = idx;
        self.occupied[level] |= 1 << slot;
    }

    fn unlink(&mut self, idx: u32, level: usize, slot: usize) {
        let (prev, next) = {
            let s = &self.slab[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.heads[level][slot] = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        }
        if self.heads[level][slot] == NIL {
            self.occupied[level] &= !(1 << slot);
        }
    }

    /// Inserts a staged slab index into the sorted ready run. New events
    /// are never earlier than anything already delivered, so the
    /// insertion point is always at or after the cursor.
    fn stage_ready(&mut self, idx: u32) {
        let (time, seq) = {
            let s = &self.slab[idx as usize];
            (s.time, s.seq)
        };
        let tail = &self.ready[self.ready_cursor..];
        let pos = tail.partition_point(|&other| {
            let o = &self.slab[other as usize];
            match o.time.total_cmp(&time) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => o.seq < seq,
                std::cmp::Ordering::Greater => false,
            }
        });
        self.slab[idx as usize].state = SlotState::Ready;
        self.ready.insert(self.ready_cursor + pos, idx);
    }

    /// Schedules an event. `time` is already validated by the kernel
    /// (non-NaN, not in the past).
    pub(crate) fn schedule(&mut self, time: f64, seq: u64, dest: ComponentId, payload: E) {
        let tick = self.tick_of(time);
        let idx = self.alloc(time, seq, dest, payload, tick);
        if tick <= self.current {
            // Due within the tick the wheel already sits on (or one it
            // passed while running ahead of the kernel clock): stage it
            // directly in delivery order.
            self.stage_ready(idx);
        } else {
            let level = self.level_for(tick);
            self.link(idx, level, Self::slot_for(tick, level));
        }
        let slab = &self.slab;
        self.index.insert(seq, idx, |k, v| {
            let s = &slab[v as usize];
            s.seq == k && matches!(s.state, SlotState::InWheel | SlotState::Ready)
        });
        self.pending += 1;
    }

    /// Cancels a pending event. Returns `false` if the sequence number is
    /// unknown (delivered, already cancelled, or never scheduled).
    pub(crate) fn cancel(&mut self, seq: u64) -> bool {
        let Some(idx) = self.index.get(seq) else {
            return false;
        };
        {
            // The index is insert-only; validate against the slab (the
            // entry may refer to an already-delivered or cancelled
            // event, or to a recycled slot).
            let s = &self.slab[idx as usize];
            if s.seq != seq || !matches!(s.state, SlotState::InWheel | SlotState::Ready) {
                return false;
            }
        }
        self.index.remove(seq);
        self.pending -= 1;
        match self.slab[idx as usize].state {
            SlotState::InWheel => {
                let tick = self.slab[idx as usize].tick;
                let level = self.level_for(tick);
                self.unlink(idx, level, Self::slot_for(tick, level));
                self.release(idx);
            }
            SlotState::Ready => {
                // Removing from the middle of the sorted run would shift
                // the cursor bookkeeping; mark it and let pop skip it.
                self.slab[idx as usize].state = SlotState::CancelledInReady;
            }
            s => unreachable!("cancelling a slot in state {s:?}"),
        }
        true
    }

    /// Ensures the next live event (if any) sits at the ready cursor.
    /// Returns its slab index without consuming it.
    fn prepare_next(&mut self) -> Option<u32> {
        loop {
            // Skip cancelled entries staged in the ready run.
            while self.ready_cursor < self.ready.len() {
                let idx = self.ready[self.ready_cursor];
                if self.slab[idx as usize].state == SlotState::CancelledInReady {
                    self.ready_cursor += 1;
                    self.release(idx);
                } else {
                    return Some(idx);
                }
            }
            self.ready.clear();
            self.ready_cursor = 0;
            if self.pending == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Sorts the freshly bulk-staged ready run by `(time, seq)`. Called
    /// at the end of an [`TimingWheel::advance`], when every entry was
    /// appended unsorted — one O(k log k) sort per drained tick instead
    /// of per-element sorted insertion (which would make a k-event
    /// same-instant burst cost Θ(k²) shifts).
    fn sort_ready(&mut self) {
        let mut ready = std::mem::take(&mut self.ready);
        ready.sort_unstable_by(|&a, &b| {
            let sa = &self.slab[a as usize];
            let sb = &self.slab[b as usize];
            sa.time.total_cmp(&sb.time).then(sa.seq.cmp(&sb.seq))
        });
        self.ready = ready;
    }

    /// Advances the wheel to the next occupied tick: cascades the
    /// earliest occupied slot of the lowest occupied level, repeating
    /// until a level-0 slot drains into the ready run.
    ///
    /// Only called with the ready run empty (see
    /// [`TimingWheel::prepare_next`]), so staged events are appended
    /// unsorted and sorted once at the end.
    fn advance(&mut self) {
        debug_assert!(self.ready.is_empty() && self.ready_cursor == 0);
        loop {
            let level = (0..LEVELS)
                .find(|&l| self.occupied[l] != 0)
                .expect("advance called with pending events");
            // Within a level every occupied slot is at or after the
            // current position's slot (earlier ones were processed when
            // the wheel passed them), so the numerically smallest
            // occupied slot is the earliest.
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                // One tick's events: move onto the tick and stage them.
                let base = self.current & !(SLOTS as u64 - 1);
                self.current = base | slot as u64;
                let mut idx = self.heads[0][slot];
                self.heads[0][slot] = NIL;
                self.occupied[0] &= !(1 << slot);
                while idx != NIL {
                    let next = self.slab[idx as usize].next;
                    self.slab[idx as usize].state = SlotState::Ready;
                    self.ready.push(idx);
                    idx = next;
                }
                self.sort_ready();
                return;
            }
            // Cascade: move onto the slot's base tick (groups strictly
            // above `level` kept, group `level` set to the slot index,
            // lower groups zeroed) and re-file its events downward.
            let shift = LEVEL_BITS as usize * level;
            let group_end = shift + LEVEL_BITS as usize;
            let high_mask = if group_end >= 64 {
                0
            } else {
                !((1u64 << group_end) - 1)
            };
            self.current = (self.current & high_mask) | ((slot as u64) << shift);
            let mut idx = self.heads[level][slot];
            self.heads[level][slot] = NIL;
            self.occupied[level] &= !(1 << slot);
            while idx != NIL {
                let next = self.slab[idx as usize].next;
                let tick = self.slab[idx as usize].tick;
                if tick <= self.current {
                    self.slab[idx as usize].state = SlotState::Ready;
                    self.ready.push(idx);
                } else {
                    let l = self.level_for(tick);
                    debug_assert!(l < level, "cascade must move events down");
                    self.link(idx, l, Self::slot_for(tick, l));
                }
                idx = next;
            }
            if !self.ready.is_empty() {
                // The cascade landed events exactly on the new position:
                // they are the earliest pending, so stop here.
                self.sort_ready();
                return;
            }
        }
    }

    /// Time of the next pending event, if any.
    pub(crate) fn peek_time(&mut self) -> Option<f64> {
        self.prepare_next().map(|idx| self.slab[idx as usize].time)
    }

    /// Pops the next event in `(time, seq)` order.
    pub(crate) fn pop(&mut self) -> Option<WheelEvent<E>> {
        let idx = self.prepare_next()?;
        self.ready_cursor += 1;
        let (time, seq, dest) = {
            let s = &self.slab[idx as usize];
            (s.time, s.seq, s.dest)
        };
        let payload = self.slab[idx as usize]
            .payload
            .take()
            .expect("ready slot holds a payload");
        self.pending -= 1;
        self.release(idx);
        Some(WheelEvent {
            time,
            seq,
            dest,
            payload,
        })
    }
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ComponentId = ComponentId(0);

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.schedule(5.0, 0, A, 10);
        w.schedule(1.0, 1, A, 11);
        w.schedule(1.0, 2, A, 12);
        w.schedule(3.0, 3, A, 13);
        let order: Vec<u32> = std::iter::from_fn(|| w.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec![11, 12, 13, 10]);
    }

    #[test]
    fn same_tick_different_times_sorted() {
        // Distinct times inside one tick must still come out time-sorted.
        let mut w: TimingWheel<u32> = TimingWheel::with_resolution(1.0);
        w.schedule(2.9, 0, A, 0);
        w.schedule(2.1, 1, A, 1);
        w.schedule(2.5, 2, A, 2);
        let order: Vec<u32> = std::iter::from_fn(|| w.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn cancel_unlinks_and_recycles() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.schedule(1.0, 0, A, 0);
        w.schedule(2.0, 1, A, 1);
        w.schedule(3.0, 2, A, 2);
        assert!(w.cancel(1));
        assert!(!w.cancel(1));
        assert_eq!(w.pending(), 2);
        let order: Vec<u64> = std::iter::from_fn(|| w.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![0, 2]);
        // All three slots recycled onto the free list.
        assert_eq!(w.slab.len(), 3);
        w.schedule(4.0, 3, A, 3);
        assert_eq!(w.slab.len(), 3, "slab slots are reused");
    }

    #[test]
    fn cancel_staged_ready_entry() {
        let mut w: TimingWheel<u32> = TimingWheel::with_resolution(1.0);
        w.schedule(1.25, 0, A, 0);
        w.schedule(1.75, 1, A, 1);
        assert_eq!(w.peek_time(), Some(1.25)); // both staged in ready
        assert!(w.cancel(0));
        assert_eq!(w.pop().unwrap().seq, 1);
        assert!(w.pop().is_none());
    }

    #[test]
    fn long_empty_stretches_are_skipped() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.schedule(1e6, 0, A, 0);
        w.schedule(2e6, 1, A, 1);
        assert_eq!(w.pop().unwrap().seq, 0);
        assert_eq!(w.pop().unwrap().seq, 1);
        assert!(w.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.schedule(10.0, 0, A, 0);
        assert_eq!(w.pop().unwrap().seq, 0);
        // The wheel's position ran ahead; a later event still works, and
        // an event at the same instant as the last pop stages directly.
        w.schedule(10.0, 1, A, 1);
        w.schedule(12.0, 2, A, 2);
        assert_eq!(w.pop().unwrap().seq, 1);
        assert_eq!(w.pop().unwrap().seq, 2);
    }
}
