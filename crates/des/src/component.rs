//! The typed component-handler trait.
//!
//! A simulation is a set of components exchanging events through one
//! [`Kernel`]. The engine that owns the components assigns each a
//! [`ComponentId`](crate::ComponentId), pops events in a loop, and
//! dispatches each event to the component named by its destination:
//!
//! ```text
//! while let Some(ev) = kernel.pop() {
//!     match ev.dest {
//!         SESSIONS  => self.sessions.handle(ev, &mut kernel),
//!         ADMISSION => self.admission.handle(ev, &mut kernel),
//!         ...
//!     }
//! }
//! ```
//!
//! Handlers receive the kernel mutably so they can schedule follow-up
//! events (including to themselves — self-rescheduling ticks — and
//! cancellable timers), but they never receive other components:
//! cross-component communication happens exclusively through events,
//! which is what keeps the execution order — and with it the determinism
//! contract — fully captured by the kernel's `(time, seq)` ordering.

use crate::kernel::{Event, Kernel};

/// A simulation component: a typed handler for the events addressed to
/// it.
pub trait Component<E> {
    /// Handles one delivered event. `kernel.now()` equals `event.time`.
    fn handle(&mut self, event: Event<E>, kernel: &mut Kernel<E>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ComponentId;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Msg {
        Tick,
        Echo(u64),
    }

    /// Self-rescheduling ticker that echoes to a peer.
    struct Ticker {
        peer: ComponentId,
        me: ComponentId,
        ticks: u64,
        limit: u64,
    }

    impl Component<Msg> for Ticker {
        fn handle(&mut self, event: Event<Msg>, kernel: &mut Kernel<Msg>) {
            if let Msg::Tick = event.payload {
                self.ticks += 1;
                kernel.schedule_in(0.0, self.peer, Msg::Echo(self.ticks));
                if self.ticks < self.limit {
                    kernel.schedule_in(1.0, self.me, Msg::Tick);
                }
            }
        }
    }

    /// Records every echo it receives, with its timestamp.
    struct Sink {
        received: Vec<(f64, u64)>,
    }

    impl Component<Msg> for Sink {
        fn handle(&mut self, event: Event<Msg>, _kernel: &mut Kernel<Msg>) {
            if let Msg::Echo(n) = event.payload {
                self.received.push((event.time, n));
            }
        }
    }

    #[test]
    fn components_exchange_events_through_the_kernel() {
        const TICKER: ComponentId = ComponentId(0);
        const SINK: ComponentId = ComponentId(1);
        let mut kernel: Kernel<Msg> = Kernel::new();
        let mut ticker = Ticker {
            peer: SINK,
            me: TICKER,
            ticks: 0,
            limit: 3,
        };
        let mut sink = Sink {
            received: Vec::new(),
        };
        kernel.schedule_at(0.0, TICKER, Msg::Tick);
        while let Some(ev) = kernel.pop() {
            match ev.dest {
                TICKER => ticker.handle(ev, &mut kernel),
                SINK => sink.handle(ev, &mut kernel),
                other => panic!("unroutable destination {other:?}"),
            }
        }
        assert_eq!(ticker.ticks, 3);
        assert_eq!(sink.received, vec![(0.0, 1), (1.0, 2), (2.0, 3)]);
    }
}
