//! Multi-region provisioning — the paper's stated future work ("we are
//! expanding to cloud systems spanning different geographic locations").
//!
//! Each region hosts its own cloud site (clusters, prices, SLAs) and its
//! own viewer base whose diurnal pattern follows *local* time; a
//! [`GeoController`] runs one per-region provisioning controller and
//! aggregates the plans. The interesting phenomenon this exposes is
//! *time-zone multiplexing*: summed across offset time zones the global
//! demand curve is much flatter than any single region's, so one
//! centralized site can be provisioned closer to the mean — at the price
//! of serving most viewers from a remote region. The
//! `ext_multi_region` bench quantifies that trade.

use cloudmedia_cloud::broker::SlaTerms;
use serde::{Deserialize, Serialize};

use crate::controller::{Controller, ControllerConfig, ProvisioningPlan};
use crate::error::{invalid_param, CoreError};
use crate::federation::{plan_global_placement, FederationPolicy, GlobalPlacement, SiteSpec};
use crate::predictor::{ChannelObservation, PredictorKind};

/// A geographic region: its share of the viewer base and its clock.
///
/// ```
/// use cloudmedia_core::geo::{three_sites, RegionSpec};
///
/// let apac = RegionSpec {
///     name: "apac".into(),
///     population_share: 0.25,
///     timezone_offset_hours: 14.0,
/// };
/// assert_eq!(three_sites()[2], apac);
/// // Shares across a deployment must sum to ~1.
/// let total: f64 = three_sites().iter().map(|r| r.population_share).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Display name (e.g. "us-east").
    pub name: String,
    /// Share of the global viewer population in `(0, 1]`; shares across a
    /// deployment should sum to 1.
    pub population_share: f64,
    /// Time-zone offset in hours relative to the reference region. Flash
    /// crowds happen in *local* evening time, so offsets de-correlate the
    /// regions' demand peaks.
    pub timezone_offset_hours: f64,
}

impl RegionSpec {
    fn validate(&self) -> Result<(), CoreError> {
        if !(self.population_share > 0.0 && self.population_share <= 1.0) {
            return Err(invalid_param(
                "population_share",
                format!("must be in (0, 1], got {}", self.population_share),
            ));
        }
        if !self.timezone_offset_hours.is_finite() {
            return Err(invalid_param("timezone_offset_hours", "must be finite"));
        }
        Ok(())
    }
}

/// Tolerance on the deployment-wide population-share sum.
const SHARE_SUM_TOLERANCE: f64 = 1e-3;

/// Validates a deployment's region list: at least one region, each
/// region individually valid, and the population shares summing to ~1
/// (a deployment that covers 80 % of its viewers — or 120 % — is a
/// configuration bug, not a smaller system). Shared by [`GeoController`]
/// and the federated simulator.
///
/// # Errors
///
/// Names the offending region or the off-by share sum.
pub fn validate_regions(regions: &[RegionSpec]) -> Result<(), CoreError> {
    if regions.is_empty() {
        return Err(invalid_param("regions", "at least one region required"));
    }
    for r in regions {
        r.validate()?;
    }
    let total: f64 = regions.iter().map(|r| r.population_share).sum();
    if (total - 1.0).abs() > SHARE_SUM_TOLERANCE {
        return Err(invalid_param(
            "population_share",
            format!("shares across the deployment must sum to ~1.0, got {total}"),
        ));
    }
    Ok(())
}

/// The classic three-site deployment: Americas, Europe, Asia-Pacific.
pub fn three_sites() -> Vec<RegionSpec> {
    vec![
        RegionSpec {
            name: "americas".into(),
            population_share: 0.40,
            timezone_offset_hours: 0.0,
        },
        RegionSpec {
            name: "europe".into(),
            population_share: 0.35,
            timezone_offset_hours: 7.0,
        },
        RegionSpec {
            name: "apac".into(),
            population_share: 0.25,
            timezone_offset_hours: 14.0,
        },
    ]
}

/// Aggregated outcome of one geo provisioning interval.
#[derive(Debug, Clone)]
pub struct GeoPlan {
    /// One plan per region, in region order.
    pub per_region: Vec<ProvisioningPlan>,
    /// Total VM rental cost across regions, dollars per hour.
    pub total_hourly_cost: f64,
    /// Total cloud demand across regions, bytes per second.
    pub total_cloud_demand: f64,
    /// The global placement, when the controller runs a federation (see
    /// [`GeoController::with_federation`]): how much of each region's
    /// demand is served locally vs redirected.
    pub federation: Option<GlobalPlacement>,
}

/// One provisioning controller per region, fed region-local statistics.
///
/// Optionally carries a [`FederationPolicy`] plus per-region
/// [`SiteSpec`]s; [`GeoController::plan_interval`] then also runs the
/// global placement optimizer over the per-region demands and reports
/// the redirection decision in [`GeoPlan::federation`].
#[derive(Debug)]
pub struct GeoController {
    regions: Vec<RegionSpec>,
    controllers: Vec<Controller>,
    federation: Option<(Vec<SiteSpec>, FederationPolicy)>,
}

impl GeoController {
    /// Creates a controller per region from a shared configuration. Each
    /// region receives the full VM/storage budget (sites are independent
    /// accounts); use [`GeoController::with_budget_split`] to divide a
    /// global budget by population share instead.
    ///
    /// # Errors
    ///
    /// Propagates region and configuration validation failures,
    /// including population shares not summing to ~1 across the
    /// deployment.
    pub fn new(
        config: ControllerConfig,
        predictor: PredictorKind,
        regions: Vec<RegionSpec>,
    ) -> Result<Self, CoreError> {
        validate_regions(&regions)?;
        let controllers = regions
            .iter()
            .map(|_| Controller::new(config.clone(), predictor))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            regions,
            controllers,
            federation: None,
        })
    }

    /// Creates per-region controllers with the global budgets divided by
    /// population share.
    ///
    /// # Errors
    ///
    /// Propagates region and configuration validation failures.
    pub fn with_budget_split(
        config: ControllerConfig,
        predictor: PredictorKind,
        regions: Vec<RegionSpec>,
    ) -> Result<Self, CoreError> {
        validate_regions(&regions)?;
        let controllers = regions
            .iter()
            .map(|r| {
                let mut c = config.clone();
                c.vm_budget_per_hour *= r.population_share;
                c.storage_budget_per_hour *= r.population_share;
                Controller::new(c, predictor)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            regions,
            controllers,
            federation: None,
        })
    }

    /// Creates a *federated* geo controller: per-region controllers plus
    /// the global placement optimizer over the given site economics.
    ///
    /// # Errors
    ///
    /// Propagates region/site/policy validation failures and requires one
    /// site per region.
    pub fn with_federation(
        config: ControllerConfig,
        predictor: PredictorKind,
        regions: Vec<RegionSpec>,
        sites: Vec<SiteSpec>,
        policy: FederationPolicy,
    ) -> Result<Self, CoreError> {
        if sites.len() != regions.len() {
            return Err(invalid_param(
                "sites",
                format!(
                    "expected one site per region, got {} sites / {} regions",
                    sites.len(),
                    regions.len()
                ),
            ));
        }
        policy.validate()?;
        let mut this = Self::new(config, predictor, regions)?;
        this.federation = Some((sites, policy));
        Ok(this)
    }

    /// The regions, in plan order.
    pub fn regions(&self) -> &[RegionSpec] {
        &self.regions
    }

    /// Plans one interval: `stats[k]` carries region `k`'s measured
    /// channel statistics, `slas[k]` its site's SLA terms.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch or any regional planning failure (the
    /// error names the paper's budget/feasibility signals).
    pub fn plan_interval(
        &mut self,
        stats: &[Vec<(usize, ChannelObservation)>],
        slas: &[SlaTerms],
    ) -> Result<GeoPlan, CoreError> {
        if stats.len() != self.regions.len() || slas.len() != self.regions.len() {
            return Err(invalid_param(
                "stats",
                format!(
                    "expected {} regions, got {} stats / {} slas",
                    self.regions.len(),
                    stats.len(),
                    slas.len()
                ),
            ));
        }
        let mut per_region = Vec::with_capacity(self.regions.len());
        for ((controller, region_stats), sla) in self.controllers.iter_mut().zip(stats).zip(slas) {
            per_region.push(controller.plan_interval(region_stats, sla)?);
        }
        let total_hourly_cost = per_region
            .iter()
            .map(|p| p.vm_plan.integer_hourly_cost)
            .sum();
        let total_cloud_demand = per_region.iter().map(|p| p.total_cloud_demand).sum();
        let federation = match &self.federation {
            Some((sites, policy)) => {
                let demands: Vec<f64> = per_region.iter().map(|p| p.total_cloud_demand).collect();
                // Each site's marginal bandwidth price comes from its own
                // published SLA, so no region ordering or reference-market
                // assumption is baked in.
                let prices: Vec<f64> = slas
                    .iter()
                    .map(SlaTerms::bandwidth_price_per_bps_hour)
                    .collect();
                Some(plan_global_placement(&demands, sites, &prices, policy)?)
            }
            None => None,
        };
        Ok(GeoPlan {
            per_region,
            total_hourly_cost,
            total_cloud_demand,
            federation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use crate::controller::StreamingMode;
    use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};

    fn sla() -> SlaTerms {
        SlaTerms {
            virtual_clusters: paper_virtual_clusters(),
            nfs_clusters: paper_nfs_clusters(),
        }
    }

    fn observation(rate: f64) -> ChannelObservation {
        let model = ChannelModel::paper_default(0, rate);
        ChannelObservation {
            arrival_rate: rate,
            alpha: model.alpha,
            routing: model.routing,
        }
    }

    fn geo() -> GeoController {
        GeoController::new(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            three_sites(),
        )
        .unwrap()
    }

    #[test]
    fn three_sites_cover_the_population() {
        let total: f64 = three_sites().iter().map(|r| r.population_share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_region_plans_track_per_region_demand() {
        let mut g = geo();
        let slas = vec![sla(), sla(), sla()];
        let stats = vec![
            vec![(0, observation(0.4))], // americas at evening peak
            vec![(0, observation(0.1))], // europe at night
            vec![(0, observation(0.05))],
        ];
        let plan = g.plan_interval(&stats, &slas).unwrap();
        assert_eq!(plan.per_region.len(), 3);
        let d: Vec<f64> = plan
            .per_region
            .iter()
            .map(|p| p.total_cloud_demand)
            .collect();
        assert!(
            d[0] > d[1] && d[1] > d[2],
            "demand order follows load: {d:?}"
        );
        assert!((plan.total_cloud_demand - d.iter().sum::<f64>()).abs() < 1e-9);
        assert!(plan.total_hourly_cost > 0.0);
    }

    #[test]
    fn regions_plan_independently_across_intervals() {
        let mut g = geo();
        let slas = vec![sla(), sla(), sla()];
        g.plan_interval(
            &[
                vec![(0, observation(0.3))],
                vec![(0, observation(0.3))],
                vec![(0, observation(0.3))],
            ],
            &slas,
        )
        .unwrap();
        // Region 1 quiets down; only its plan shrinks.
        let plan = g
            .plan_interval(
                &[
                    vec![(0, observation(0.3))],
                    vec![(0, observation(0.05))],
                    vec![(0, observation(0.3))],
                ],
                &slas,
            )
            .unwrap();
        assert!(plan.per_region[1].total_cloud_demand < plan.per_region[0].total_cloud_demand);
        assert!(
            (plan.per_region[0].total_cloud_demand - plan.per_region[2].total_cloud_demand).abs()
                < 1e-6
        );
    }

    #[test]
    fn budget_split_scales_with_population_share() {
        let mut g = GeoController::with_budget_split(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            three_sites(),
        )
        .unwrap();
        let slas = vec![sla(), sla(), sla()];
        // Load that fits the 40% americas budget must also be rejected by
        // the 25% apac budget if apac sees the same absolute load scaled
        // beyond its share. Drive apac over its split budget:
        let stats = vec![
            vec![(0, observation(0.2))],
            vec![(0, observation(0.2))],
            vec![(0, observation(1.1))], // far above apac's 25% of $100/h
        ];
        let err = g.plan_interval(&stats, &slas).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Infeasible { .. } | CoreError::CapacityExceeded { .. }
            ),
            "expected budget/capacity failure, got {err:?}"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut g = geo();
        let slas = vec![sla()];
        assert!(g.plan_interval(&[], &slas).is_err());
    }

    #[test]
    fn shares_not_summing_to_one_rejected() {
        // Two regions covering only 60 % of the population: a deployment
        // bug the per-region checks used to miss.
        let partial = vec![
            RegionSpec {
                name: "a".into(),
                population_share: 0.4,
                timezone_offset_hours: 0.0,
            },
            RegionSpec {
                name: "b".into(),
                population_share: 0.2,
                timezone_offset_hours: 7.0,
            },
        ];
        let err = GeoController::new(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            partial.clone(),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("sum to ~1.0"),
            "expected share-sum error, got: {err}"
        );
        assert!(GeoController::with_budget_split(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            partial,
        )
        .is_err());
        // Over-covered deployments fail too.
        let over = vec![
            RegionSpec {
                name: "a".into(),
                population_share: 0.8,
                timezone_offset_hours: 0.0,
            },
            RegionSpec {
                name: "b".into(),
                population_share: 0.8,
                timezone_offset_hours: 7.0,
            },
        ];
        assert!(validate_regions(&over).is_err());
        // A single full-coverage region (the central deployment) passes.
        assert!(validate_regions(&[RegionSpec {
            name: "central".into(),
            population_share: 1.0,
            timezone_offset_hours: 0.0,
        }])
        .is_ok());
    }

    #[test]
    fn federated_controller_reports_a_placement() {
        use crate::federation::{paper_sites, FederationPolicy};
        let mut g = GeoController::with_federation(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            three_sites(),
            paper_sites(),
            FederationPolicy::federated(),
        )
        .unwrap();
        // Each region publishes its own price book: the premium factors
        // of `paper_sites` are reflected in the SLAs the caller passes,
        // which is where the optimizer reads marginal prices from.
        let slas: Vec<SlaTerms> = crate::federation::paper_sites()
            .iter()
            .map(|s| sla().with_vm_price_factor(s.vm_price_factor))
            .collect();
        // Apac at its evening peak while the others idle: its premium
        // site redirects into the cheap reference region.
        let stats = vec![
            vec![(0, observation(0.02))],
            vec![(0, observation(0.02))],
            vec![(0, observation(0.5))],
        ];
        let plan = g.plan_interval(&stats, &slas).unwrap();
        let placement = plan.federation.expect("federated controller places");
        assert_eq!(placement.assignment.len(), 3);
        assert!(
            placement.redirect_fraction(2) > 0.5,
            "apac redirects its peak: {:?}",
            placement.assignment
        );
        // Conservation: every region's demand is fully assigned.
        for (i, p) in plan.per_region.iter().enumerate() {
            let served: f64 = placement.assignment[i].iter().sum();
            assert!((served - p.total_cloud_demand).abs() < 1e-6);
        }
    }

    #[test]
    fn invalid_regions_rejected() {
        let bad = vec![RegionSpec {
            name: "x".into(),
            population_share: 0.0,
            timezone_offset_hours: 0.0,
        }];
        assert!(GeoController::new(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            bad,
        )
        .is_err());
        assert!(GeoController::new(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            vec![],
        )
        .is_err());
    }
}
