//! Multi-region provisioning — the paper's stated future work ("we are
//! expanding to cloud systems spanning different geographic locations").
//!
//! Each region hosts its own cloud site (clusters, prices, SLAs) and its
//! own viewer base whose diurnal pattern follows *local* time; a
//! [`GeoController`] runs one per-region provisioning controller and
//! aggregates the plans. The interesting phenomenon this exposes is
//! *time-zone multiplexing*: summed across offset time zones the global
//! demand curve is much flatter than any single region's, so one
//! centralized site can be provisioned closer to the mean — at the price
//! of serving most viewers from a remote region. The
//! `ext_multi_region` bench quantifies that trade.

use cloudmedia_cloud::broker::SlaTerms;
use serde::{Deserialize, Serialize};

use crate::controller::{Controller, ControllerConfig, ProvisioningPlan};
use crate::error::{invalid_param, CoreError};
use crate::predictor::{ChannelObservation, PredictorKind};

/// A geographic region: its share of the viewer base and its clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Display name (e.g. "us-east").
    pub name: String,
    /// Share of the global viewer population in `(0, 1]`; shares across a
    /// deployment should sum to 1.
    pub population_share: f64,
    /// Time-zone offset in hours relative to the reference region. Flash
    /// crowds happen in *local* evening time, so offsets de-correlate the
    /// regions' demand peaks.
    pub timezone_offset_hours: f64,
}

impl RegionSpec {
    fn validate(&self) -> Result<(), CoreError> {
        if !(self.population_share > 0.0 && self.population_share <= 1.0) {
            return Err(invalid_param(
                "population_share",
                format!("must be in (0, 1], got {}", self.population_share),
            ));
        }
        if !self.timezone_offset_hours.is_finite() {
            return Err(invalid_param("timezone_offset_hours", "must be finite"));
        }
        Ok(())
    }
}

/// The classic three-site deployment: Americas, Europe, Asia-Pacific.
pub fn three_sites() -> Vec<RegionSpec> {
    vec![
        RegionSpec {
            name: "americas".into(),
            population_share: 0.40,
            timezone_offset_hours: 0.0,
        },
        RegionSpec {
            name: "europe".into(),
            population_share: 0.35,
            timezone_offset_hours: 7.0,
        },
        RegionSpec {
            name: "apac".into(),
            population_share: 0.25,
            timezone_offset_hours: 14.0,
        },
    ]
}

/// Aggregated outcome of one geo provisioning interval.
#[derive(Debug, Clone)]
pub struct GeoPlan {
    /// One plan per region, in region order.
    pub per_region: Vec<ProvisioningPlan>,
    /// Total VM rental cost across regions, dollars per hour.
    pub total_hourly_cost: f64,
    /// Total cloud demand across regions, bytes per second.
    pub total_cloud_demand: f64,
}

/// One provisioning controller per region, fed region-local statistics.
#[derive(Debug)]
pub struct GeoController {
    regions: Vec<RegionSpec>,
    controllers: Vec<Controller>,
}

impl GeoController {
    /// Creates a controller per region from a shared configuration. Each
    /// region receives the full VM/storage budget (sites are independent
    /// accounts); use [`GeoController::with_budget_split`] to divide a
    /// global budget by population share instead.
    ///
    /// # Errors
    ///
    /// Propagates region and configuration validation failures.
    pub fn new(
        config: ControllerConfig,
        predictor: PredictorKind,
        regions: Vec<RegionSpec>,
    ) -> Result<Self, CoreError> {
        if regions.is_empty() {
            return Err(invalid_param("regions", "at least one region required"));
        }
        for r in &regions {
            r.validate()?;
        }
        let controllers = regions
            .iter()
            .map(|_| Controller::new(config.clone(), predictor))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            regions,
            controllers,
        })
    }

    /// Creates per-region controllers with the global budgets divided by
    /// population share.
    ///
    /// # Errors
    ///
    /// Propagates region and configuration validation failures.
    pub fn with_budget_split(
        config: ControllerConfig,
        predictor: PredictorKind,
        regions: Vec<RegionSpec>,
    ) -> Result<Self, CoreError> {
        if regions.is_empty() {
            return Err(invalid_param("regions", "at least one region required"));
        }
        for r in &regions {
            r.validate()?;
        }
        let controllers = regions
            .iter()
            .map(|r| {
                let mut c = config.clone();
                c.vm_budget_per_hour *= r.population_share;
                c.storage_budget_per_hour *= r.population_share;
                Controller::new(c, predictor)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            regions,
            controllers,
        })
    }

    /// The regions, in plan order.
    pub fn regions(&self) -> &[RegionSpec] {
        &self.regions
    }

    /// Plans one interval: `stats[k]` carries region `k`'s measured
    /// channel statistics, `slas[k]` its site's SLA terms.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch or any regional planning failure (the
    /// error names the paper's budget/feasibility signals).
    pub fn plan_interval(
        &mut self,
        stats: &[Vec<(usize, ChannelObservation)>],
        slas: &[SlaTerms],
    ) -> Result<GeoPlan, CoreError> {
        if stats.len() != self.regions.len() || slas.len() != self.regions.len() {
            return Err(invalid_param(
                "stats",
                format!(
                    "expected {} regions, got {} stats / {} slas",
                    self.regions.len(),
                    stats.len(),
                    slas.len()
                ),
            ));
        }
        let mut per_region = Vec::with_capacity(self.regions.len());
        for ((controller, region_stats), sla) in self.controllers.iter_mut().zip(stats).zip(slas) {
            per_region.push(controller.plan_interval(region_stats, sla)?);
        }
        let total_hourly_cost = per_region
            .iter()
            .map(|p| p.vm_plan.integer_hourly_cost)
            .sum();
        let total_cloud_demand = per_region.iter().map(|p| p.total_cloud_demand).sum();
        Ok(GeoPlan {
            per_region,
            total_hourly_cost,
            total_cloud_demand,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use crate::controller::StreamingMode;
    use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};

    fn sla() -> SlaTerms {
        SlaTerms {
            virtual_clusters: paper_virtual_clusters(),
            nfs_clusters: paper_nfs_clusters(),
        }
    }

    fn observation(rate: f64) -> ChannelObservation {
        let model = ChannelModel::paper_default(0, rate);
        ChannelObservation {
            arrival_rate: rate,
            alpha: model.alpha,
            routing: model.routing,
        }
    }

    fn geo() -> GeoController {
        GeoController::new(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            three_sites(),
        )
        .unwrap()
    }

    #[test]
    fn three_sites_cover_the_population() {
        let total: f64 = three_sites().iter().map(|r| r.population_share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_region_plans_track_per_region_demand() {
        let mut g = geo();
        let slas = vec![sla(), sla(), sla()];
        let stats = vec![
            vec![(0, observation(0.4))], // americas at evening peak
            vec![(0, observation(0.1))], // europe at night
            vec![(0, observation(0.05))],
        ];
        let plan = g.plan_interval(&stats, &slas).unwrap();
        assert_eq!(plan.per_region.len(), 3);
        let d: Vec<f64> = plan
            .per_region
            .iter()
            .map(|p| p.total_cloud_demand)
            .collect();
        assert!(
            d[0] > d[1] && d[1] > d[2],
            "demand order follows load: {d:?}"
        );
        assert!((plan.total_cloud_demand - d.iter().sum::<f64>()).abs() < 1e-9);
        assert!(plan.total_hourly_cost > 0.0);
    }

    #[test]
    fn regions_plan_independently_across_intervals() {
        let mut g = geo();
        let slas = vec![sla(), sla(), sla()];
        g.plan_interval(
            &[
                vec![(0, observation(0.3))],
                vec![(0, observation(0.3))],
                vec![(0, observation(0.3))],
            ],
            &slas,
        )
        .unwrap();
        // Region 1 quiets down; only its plan shrinks.
        let plan = g
            .plan_interval(
                &[
                    vec![(0, observation(0.3))],
                    vec![(0, observation(0.05))],
                    vec![(0, observation(0.3))],
                ],
                &slas,
            )
            .unwrap();
        assert!(plan.per_region[1].total_cloud_demand < plan.per_region[0].total_cloud_demand);
        assert!(
            (plan.per_region[0].total_cloud_demand - plan.per_region[2].total_cloud_demand).abs()
                < 1e-6
        );
    }

    #[test]
    fn budget_split_scales_with_population_share() {
        let mut g = GeoController::with_budget_split(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            three_sites(),
        )
        .unwrap();
        let slas = vec![sla(), sla(), sla()];
        // Load that fits the 40% americas budget must also be rejected by
        // the 25% apac budget if apac sees the same absolute load scaled
        // beyond its share. Drive apac over its split budget:
        let stats = vec![
            vec![(0, observation(0.2))],
            vec![(0, observation(0.2))],
            vec![(0, observation(1.1))], // far above apac's 25% of $100/h
        ];
        let err = g.plan_interval(&stats, &slas).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Infeasible { .. } | CoreError::CapacityExceeded { .. }
            ),
            "expected budget/capacity failure, got {err:?}"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut g = geo();
        let slas = vec![sla()];
        assert!(g.plan_interval(&[], &slas).is_err());
    }

    #[test]
    fn invalid_regions_rejected() {
        let bad = vec![RegionSpec {
            name: "x".into(),
            population_share: 0.0,
            timezone_offset_hours: 0.0,
        }];
        assert!(GeoController::new(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            bad,
        )
        .is_err());
        assert!(GeoController::new(
            ControllerConfig::paper_default(StreamingMode::ClientServer),
            PredictorKind::LastInterval,
            vec![],
        )
        .is_err());
    }
}
