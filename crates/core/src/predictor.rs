//! Demand predictors.
//!
//! The paper predicts next-interval demand from "user arrival patterns in
//! the previous time interval (hour)" — the last-interval predictor — and
//! notes that "more accurate prediction methods based on historical data
//! collected over more intervals can be applied". This module implements
//! the paper's predictor plus the two natural extensions (moving average
//! and EWMA) used by the predictor ablation bench.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, CoreError};

/// One interval's measured statistics for a channel, as reported by the
/// tracker (paper Sec. V-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelObservation {
    /// Measured external arrival rate `Λ(c)`, users per second.
    pub arrival_rate: f64,
    /// Measured fraction of arrivals starting at the first chunk.
    pub alpha: f64,
    /// Measured chunk transfer probability matrix.
    pub routing: Vec<Vec<f64>>,
}

impl ChannelObservation {
    fn blend(&mut self, other: &ChannelObservation, weight_other: f64) {
        let w = weight_other;
        self.arrival_rate = (1.0 - w) * self.arrival_rate + w * other.arrival_rate;
        self.alpha = (1.0 - w) * self.alpha + w * other.alpha;
        for (row, orow) in self.routing.iter_mut().zip(&other.routing) {
            for (p, op) in row.iter_mut().zip(orow) {
                *p = (1.0 - w) * *p + w * *op;
            }
        }
    }
}

/// Prediction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Use the previous interval verbatim (the paper's design).
    LastInterval,
    /// Element-wise mean of the last `window` intervals.
    MovingAverage {
        /// Number of intervals to average over.
        window: usize,
    },
    /// Exponentially weighted moving average with the given weight on the
    /// newest observation.
    Ewma {
        /// Weight of the newest observation, in `(0, 1]`.
        weight: f64,
    },
}

/// Per-channel demand predictor.
#[derive(Debug, Clone)]
pub struct DemandPredictor {
    kind: PredictorKind,
    history: HashMap<usize, VecDeque<ChannelObservation>>,
    smoothed: HashMap<usize, ChannelObservation>,
}

impl DemandPredictor {
    /// Creates a predictor of the given kind.
    ///
    /// # Errors
    ///
    /// Rejects zero windows and EWMA weights outside `(0, 1]`.
    pub fn new(kind: PredictorKind) -> Result<Self, CoreError> {
        match kind {
            PredictorKind::MovingAverage { window: 0 } => {
                return Err(invalid_param("window", "must be positive"));
            }
            PredictorKind::Ewma { weight } if !(weight > 0.0 && weight <= 1.0) => {
                return Err(invalid_param(
                    "weight",
                    format!("must be in (0, 1], got {weight}"),
                ));
            }
            _ => {}
        }
        Ok(Self {
            kind,
            history: HashMap::new(),
            smoothed: HashMap::new(),
        })
    }

    /// The configured strategy.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// Ingests one interval's measurement for `channel`.
    pub fn observe(&mut self, channel: usize, obs: ChannelObservation) {
        match self.kind {
            PredictorKind::LastInterval => {
                self.smoothed.insert(channel, obs);
            }
            PredictorKind::MovingAverage { window } => {
                let h = self.history.entry(channel).or_default();
                h.push_back(obs);
                while h.len() > window {
                    h.pop_front();
                }
            }
            PredictorKind::Ewma { weight } => match self.smoothed.get_mut(&channel) {
                Some(s) => s.blend(&obs, weight),
                None => {
                    self.smoothed.insert(channel, obs);
                }
            },
        }
    }

    /// Predicts the next interval's statistics for `channel`; `None`
    /// before any observation.
    pub fn predict(&self, channel: usize) -> Option<ChannelObservation> {
        match self.kind {
            PredictorKind::LastInterval | PredictorKind::Ewma { .. } => {
                self.smoothed.get(&channel).cloned()
            }
            PredictorKind::MovingAverage { .. } => {
                let h = self.history.get(&channel)?;
                if h.is_empty() {
                    return None;
                }
                let n = h.len() as f64;
                let mut acc = h.front().expect("non-empty").clone();
                acc.arrival_rate = 0.0;
                acc.alpha = 0.0;
                for row in &mut acc.routing {
                    row.iter_mut().for_each(|p| *p = 0.0);
                }
                for obs in h {
                    acc.arrival_rate += obs.arrival_rate / n;
                    acc.alpha += obs.alpha / n;
                    for (row, orow) in acc.routing.iter_mut().zip(&obs.routing) {
                        for (p, op) in row.iter_mut().zip(orow) {
                            *p += *op / n;
                        }
                    }
                }
                Some(acc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(rate: f64) -> ChannelObservation {
        ChannelObservation {
            arrival_rate: rate,
            alpha: 0.7,
            routing: vec![vec![0.0, 0.5], vec![0.0, 0.0]],
        }
    }

    #[test]
    fn last_interval_echoes_latest() {
        let mut p = DemandPredictor::new(PredictorKind::LastInterval).unwrap();
        assert!(p.predict(0).is_none());
        p.observe(0, obs(1.0));
        p.observe(0, obs(3.0));
        assert_eq!(p.predict(0).unwrap().arrival_rate, 3.0);
    }

    #[test]
    fn moving_average_averages_window() {
        let mut p = DemandPredictor::new(PredictorKind::MovingAverage { window: 3 }).unwrap();
        for r in [1.0, 2.0, 3.0, 4.0] {
            p.observe(0, obs(r));
        }
        // Window keeps [2, 3, 4]; mean 3.
        assert!((p.predict(0).unwrap().arrival_rate - 3.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_partial_window() {
        let mut p = DemandPredictor::new(PredictorKind::MovingAverage { window: 5 }).unwrap();
        p.observe(0, obs(2.0));
        p.observe(0, obs(4.0));
        assert!((p.predict(0).unwrap().arrival_rate - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_blends_toward_new_observations() {
        let mut p = DemandPredictor::new(PredictorKind::Ewma { weight: 0.5 }).unwrap();
        p.observe(0, obs(1.0));
        p.observe(0, obs(3.0));
        // 0.5*1 + 0.5*3 = 2.
        assert!((p.predict(0).unwrap().arrival_rate - 2.0).abs() < 1e-12);
        p.observe(0, obs(2.0));
        assert!((p.predict(0).unwrap().arrival_rate - 2.0).abs() < 1e-12);
    }

    #[test]
    fn routing_matrix_is_smoothed_elementwise() {
        let mut p = DemandPredictor::new(PredictorKind::Ewma { weight: 0.5 }).unwrap();
        let mut o1 = obs(1.0);
        o1.routing[0][1] = 0.4;
        let mut o2 = obs(1.0);
        o2.routing[0][1] = 0.8;
        p.observe(0, o1);
        p.observe(0, o2);
        assert!((p.predict(0).unwrap().routing[0][1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn channels_are_independent() {
        let mut p = DemandPredictor::new(PredictorKind::LastInterval).unwrap();
        p.observe(0, obs(1.0));
        p.observe(1, obs(9.0));
        assert_eq!(p.predict(0).unwrap().arrival_rate, 1.0);
        assert_eq!(p.predict(1).unwrap().arrival_rate, 9.0);
        assert!(p.predict(2).is_none());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(DemandPredictor::new(PredictorKind::MovingAverage { window: 0 }).is_err());
        assert!(DemandPredictor::new(PredictorKind::Ewma { weight: 0.0 }).is_err());
        assert!(DemandPredictor::new(PredictorKind::Ewma { weight: 1.5 }).is_err());
    }

    #[test]
    fn ewma_weight_one_equals_last_interval() {
        let mut a = DemandPredictor::new(PredictorKind::Ewma { weight: 1.0 }).unwrap();
        let mut b = DemandPredictor::new(PredictorKind::LastInterval).unwrap();
        for r in [1.0, 5.0, 2.0] {
            a.observe(0, obs(r));
            b.observe(0, obs(r));
        }
        assert_eq!(a.predict(0), b.predict(0));
    }
}
