//! Error types for the CloudMedia core.

use std::error::Error;
use std::fmt;

use cloudmedia_cloud::CloudError;
use cloudmedia_queueing::QueueingError;

/// Which provisioning optimization could not be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// The storage rental problem (paper Eqn. 6).
    Storage,
    /// The VM configuration problem (paper Eqn. 7).
    VmConfiguration,
}

impl fmt::Display for ProblemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemKind::Storage => write!(f, "storage rental"),
            ProblemKind::VmConfiguration => write!(f, "VM configuration"),
        }
    }
}

/// Errors produced by the capacity analysis and provisioning algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A queueing computation failed.
    Queueing(QueueingError),
    /// A cloud operation failed.
    Cloud(CloudError),
    /// An optimization problem has no feasible solution within budget —
    /// the paper's signal that "the set budget is not feasible given the
    /// current prices, which should be increased".
    Infeasible {
        /// Which problem is infeasible.
        problem: ProblemKind,
        /// Budget required (dollars per hour) to cover the demand with the
        /// cheapest feasible assignment.
        required_budget: f64,
        /// Budget configured.
        configured_budget: f64,
    },
    /// Demand exceeds the cloud's total capacity regardless of budget.
    CapacityExceeded {
        /// Which problem ran out of capacity.
        problem: ProblemKind,
        /// Units requested (VMs or chunks).
        requested: f64,
        /// Units available across all clusters.
        available: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            CoreError::Queueing(e) => write!(f, "queueing analysis failed: {e}"),
            CoreError::Cloud(e) => write!(f, "cloud operation failed: {e}"),
            CoreError::Infeasible {
                problem,
                required_budget,
                configured_budget,
            } => write!(
                f,
                "{problem} problem is infeasible: requires ${required_budget:.4}/h \
                 but budget is ${configured_budget:.4}/h — increase the budget"
            ),
            CoreError::CapacityExceeded {
                problem,
                requested,
                available,
            } => write!(
                f,
                "{problem} problem exceeds total cloud capacity: \
                 requested {requested:.2}, available {available:.2}"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Queueing(e) => Some(e),
            CoreError::Cloud(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueueingError> for CoreError {
    fn from(e: QueueingError) -> Self {
        CoreError::Queueing(e)
    }
}

impl From<CloudError> for CoreError {
    fn from(e: CloudError) -> Self {
        CoreError::Cloud(e)
    }
}

pub(crate) fn invalid_param(name: &'static str, message: impl Into<String>) -> CoreError {
    CoreError::InvalidParameter {
        name,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_informative() {
        let e = CoreError::Infeasible {
            problem: ProblemKind::Storage,
            required_budget: 2.0,
            configured_budget: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains("storage rental"));
        assert!(s.contains("increase the budget"));

        let e = CoreError::CapacityExceeded {
            problem: ProblemKind::VmConfiguration,
            requested: 200.0,
            available: 150.0,
        };
        assert!(e.to_string().contains("VM configuration"));
    }

    #[test]
    fn conversions_preserve_source() {
        let qe = QueueingError::UnstableQueue {
            offered_load: 3.0,
            servers: 2,
        };
        let ce: CoreError = qe.clone().into();
        assert!(matches!(ce, CoreError::Queueing(ref inner) if *inner == qe));
        assert!(Error::source(&ce).is_some());
    }
}
