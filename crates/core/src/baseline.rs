//! Baseline provisioning strategies.
//!
//! The paper's pitch is the *model-driven elastic* controller against two
//! implicit baselines: **dedicated servers** (the fixed fleet a provider
//! would buy without a cloud — the paper's "substantial advantages over
//! private server clusters") and a **reactive autoscaler** (scale to the
//! currently observed load plus headroom, no queueing model — what a
//! generic cloud autoscaler does). Both produce the same
//! [`ProvisioningPlan`] shape so the simulator and benches can swap them
//! in for the paper's controller.

use cloudmedia_cloud::broker::SlaTerms;
use cloudmedia_cloud::scheduler::ChunkKey;
use serde::{Deserialize, Serialize};

use crate::controller::ProvisioningPlan;
use crate::error::{invalid_param, CoreError};
use crate::predictor::ChannelObservation;
use crate::provisioning::storage::{ChunkDemand, StorageProblem};
use crate::provisioning::vm::VmProblem;

/// Which provisioning strategy drives the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProvisionerKind {
    /// The paper's model-driven controller (queueing analysis + greedy
    /// optimizers, last-interval prediction).
    Model,
    /// Reactive autoscaler: provision `(1 + headroom)` times the
    /// *currently observed* streaming demand, uniformly across chunks —
    /// no queueing model, no equilibrium analysis.
    Reactive {
        /// Fractional headroom above observed demand (e.g. 0.2 = +20%).
        headroom: f64,
    },
    /// Dedicated servers: a constant fleet sized for the given peak
    /// streaming demand (bytes/s), never rescaled. The paper's
    /// private-cluster alternative.
    Fixed {
        /// Peak total streaming demand the fleet is sized for, bytes/s.
        peak_demand: f64,
    },
}

/// A baseline planner: produces [`ProvisioningPlan`]s from the same
/// tracker statistics the paper's controller consumes.
#[derive(Debug, Clone)]
pub struct BaselinePlanner {
    kind: ProvisionerKind,
    streaming_rate: f64,
    chunk_seconds: f64,
    vm_budget_per_hour: f64,
    storage_budget_per_hour: f64,
    placed: bool,
}

impl BaselinePlanner {
    /// Creates a baseline planner.
    ///
    /// # Errors
    ///
    /// Rejects the `Model` kind (use
    /// [`Controller`](crate::controller::Controller)) and invalid
    /// parameters.
    pub fn new(
        kind: ProvisionerKind,
        streaming_rate: f64,
        chunk_seconds: f64,
        vm_budget_per_hour: f64,
        storage_budget_per_hour: f64,
    ) -> Result<Self, CoreError> {
        match kind {
            ProvisionerKind::Model => {
                return Err(invalid_param(
                    "kind",
                    "Model is implemented by Controller, not BaselinePlanner",
                ));
            }
            ProvisionerKind::Reactive { headroom } => {
                if !(headroom.is_finite() && headroom >= 0.0) {
                    return Err(invalid_param("headroom", "must be non-negative"));
                }
            }
            ProvisionerKind::Fixed { peak_demand } => {
                if !(peak_demand.is_finite() && peak_demand > 0.0) {
                    return Err(invalid_param("peak_demand", "must be positive"));
                }
            }
        }
        if !(streaming_rate.is_finite() && streaming_rate > 0.0) {
            return Err(invalid_param("streaming_rate", "must be positive"));
        }
        if !(chunk_seconds.is_finite() && chunk_seconds > 0.0) {
            return Err(invalid_param("chunk_seconds", "must be positive"));
        }
        Ok(Self {
            kind,
            streaming_rate,
            chunk_seconds,
            vm_budget_per_hour,
            storage_budget_per_hour,
            placed: false,
        })
    }

    /// Scales the VM rental budget by `factor` — the baselines honour the
    /// same mid-run budget shocks as the paper's controller.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive factors.
    pub fn scale_vm_budget(&mut self, factor: f64) -> Result<(), CoreError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(invalid_param("factor", "must be positive"));
        }
        self.vm_budget_per_hour *= factor;
        Ok(())
    }

    /// Plans one interval from per-channel observations. Demands are
    /// spread uniformly over each channel's chunks (baselines have no
    /// per-chunk model).
    ///
    /// # Errors
    ///
    /// Propagates optimizer failures (budget, capacity).
    pub fn plan_interval(
        &mut self,
        stats: &[(usize, ChannelObservation)],
        sla: &SlaTerms,
    ) -> Result<ProvisioningPlan, CoreError> {
        // Observed streaming demand per channel: population x r, with the
        // population estimated from arrivals x mean session time (chunks
        // estimated from the routing matrix row mass).
        let mut chunk_demands: Vec<ChunkDemand> = Vec::new();
        let mut total = 0.0;
        // Observed arrival-rate shares: a dedicated cluster routes its
        // fixed capacity to whichever channels are loaded right now.
        let rate_total: f64 = stats.iter().map(|(_, o)| o.arrival_rate).sum();
        for (channel, obs) in stats {
            let chunks = obs.routing.len().max(1);
            let demand_total = match self.kind {
                ProvisionerKind::Fixed { peak_demand } => {
                    let share = if rate_total > 0.0 {
                        obs.arrival_rate / rate_total
                    } else {
                        1.0 / stats.len().max(1) as f64
                    };
                    peak_demand * share
                }
                ProvisionerKind::Reactive { headroom } => {
                    // Population ~ arrivals x session chunks x T0 (crude:
                    // mean sequential row mass as continue probability).
                    let cont: f64 = obs
                        .routing
                        .iter()
                        .map(|r| r.iter().sum::<f64>())
                        .sum::<f64>()
                        / chunks as f64;
                    let session_chunks = 1.0 / (1.0 - cont.min(0.99));
                    let population = obs.arrival_rate * session_chunks * self.chunk_seconds;
                    population * self.streaming_rate * (1.0 + headroom)
                }
                ProvisionerKind::Model => unreachable!("rejected in constructor"),
            };
            total += demand_total;
            let per_chunk = demand_total / chunks as f64;
            for chunk in 0..chunks {
                chunk_demands.push(ChunkDemand {
                    key: ChunkKey {
                        channel: *channel,
                        chunk,
                    },
                    demand: per_chunk,
                });
            }
        }

        let vm_plan = VmProblem {
            demands: &chunk_demands,
            clusters: &sla.virtual_clusters,
            budget_per_hour: self.vm_budget_per_hour,
        }
        .greedy()?;

        // Place storage once (uniform demands never shift the greedy
        // placement afterwards).
        let placement = if self.placed {
            None
        } else {
            let plan = StorageProblem {
                demands: &chunk_demands,
                clusters: &sla.nfs_clusters,
                chunk_bytes: (self.streaming_rate * self.chunk_seconds) as u64,
                budget_per_hour: self.storage_budget_per_hour,
            }
            .greedy()?;
            self.placed = true;
            Some(plan.placement)
        };

        Ok(ProvisioningPlan {
            vm_targets: vm_plan.vm_targets.clone(),
            placement,
            chunk_demands,
            total_cloud_demand: total,
            expected_peer_contribution: 0.0,
            vm_plan,
            storage_utility: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};

    fn sla() -> SlaTerms {
        SlaTerms {
            virtual_clusters: paper_virtual_clusters(),
            nfs_clusters: paper_nfs_clusters(),
        }
    }

    fn observation(rate: f64) -> ChannelObservation {
        let model = ChannelModel::paper_default(0, rate);
        ChannelObservation {
            arrival_rate: rate,
            alpha: model.alpha,
            routing: model.routing,
        }
    }

    fn reactive(headroom: f64) -> BaselinePlanner {
        BaselinePlanner::new(
            ProvisionerKind::Reactive { headroom },
            50_000.0,
            300.0,
            100.0,
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn fixed_fleet_never_rescales() {
        let mut p = BaselinePlanner::new(
            ProvisionerKind::Fixed { peak_demand: 60e6 },
            50_000.0,
            300.0,
            100.0,
            1.0,
        )
        .unwrap();
        let a = p.plan_interval(&[(0, observation(0.1))], &sla()).unwrap();
        let b = p.plan_interval(&[(0, observation(0.5))], &sla()).unwrap();
        assert_eq!(a.vm_targets, b.vm_targets, "fixed fleet ignores load");
        assert!(
            a.placement.is_some() && b.placement.is_none(),
            "placed once"
        );
    }

    #[test]
    fn reactive_tracks_load_with_headroom() {
        let mut p = reactive(0.2);
        let lo = p.plan_interval(&[(0, observation(0.1))], &sla()).unwrap();
        let hi = p.plan_interval(&[(0, observation(0.4))], &sla()).unwrap();
        assert!(hi.total_cloud_demand > 3.0 * lo.total_cloud_demand);
        // Headroom scales demand.
        let mut no_pad = reactive(0.0);
        let base = no_pad
            .plan_interval(&[(0, observation(0.1))], &sla())
            .unwrap();
        assert!((lo.total_cloud_demand - 1.2 * base.total_cloud_demand).abs() < 1e-6);
    }

    #[test]
    fn reactive_demand_close_to_model_equilibrium() {
        // The reactive population estimate should land in the same regime
        // as the queueing model's (it lacks only the queueing margin).
        let mut p = reactive(0.0);
        let plan = p.plan_interval(&[(0, observation(0.3))], &sla()).unwrap();
        let model = ChannelModel::paper_default(0, 0.3);
        let pooled = crate::analysis::pooled_capacity_demand(&model).unwrap();
        let ratio = plan.total_cloud_demand / pooled.total_upload_demand();
        assert!((0.6..=1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn model_kind_is_rejected() {
        assert!(BaselinePlanner::new(ProvisionerKind::Model, 5e4, 300.0, 100.0, 1.0).is_err());
        assert!(BaselinePlanner::new(
            ProvisionerKind::Reactive { headroom: -0.1 },
            5e4,
            300.0,
            100.0,
            1.0
        )
        .is_err());
        assert!(BaselinePlanner::new(
            ProvisionerKind::Fixed { peak_demand: 0.0 },
            5e4,
            300.0,
            100.0,
            1.0
        )
        .is_err());
    }
}
