//! CloudMedia: dynamic cloud provisioning for Video-on-Demand.
//!
//! This crate implements the primary contribution of *CloudMedia: When
//! Cloud on Demand Meets Video on Demand* (Wu, Wu, Li, Qiu, Lau,
//! ICDCS 2011):
//!
//! - [`channel`]: the per-channel model — streaming rate `r`, chunk time
//!   `T0`, VM bandwidth `R`, arrival rate `Λ`, routing matrix `P`,
//! - [`analysis`]: the Jackson-network equilibrium capacity analysis of
//!   Sec. IV for both client–server and P2P VoD (Proposition 1 replica
//!   counts and the Eqn. 5 rarest-first waterfilling),
//! - [`provisioning`]: the storage rental and VM configuration
//!   optimizations of Sec. V-A (greedy heuristics plus exact baselines),
//! - [`predictor`]: last-interval demand prediction (the paper's choice)
//!   plus moving-average and EWMA extensions,
//! - [`controller`]: the per-interval dynamic provisioning loop of
//!   Sec. V-B tying it all together,
//! - [`geo`]: the multi-region extension the paper lists as future work
//!   (per-region controllers, time-zone-offset demand),
//! - [`federation`]: the global placement optimizer that redirects
//!   overflow and peak-priced demand between regional sites,
//! - [`baseline`]: the comparison strategies the paper argues against —
//!   dedicated (fixed) servers and a model-free reactive autoscaler.
//!
//! # Example
//!
//! Derive how much cloud bandwidth a channel needs in each mode:
//!
//! ```
//! use cloudmedia_core::channel::ChannelModel;
//! use cloudmedia_core::analysis::{capacity_demand, p2p_capacity, PsiEstimator};
//!
//! let channel = ChannelModel::paper_default(0, 0.5); // 0.5 arrivals/s
//! let cs = capacity_demand(&channel).unwrap();
//! let p2p = p2p_capacity(&channel, 50_000.0, PsiEstimator::Independent).unwrap();
//! assert!(p2p.total_cloud_demand() < cs.total_upload_demand());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod baseline;
pub mod channel;
pub mod controller;
mod error;
pub mod federation;
pub mod geo;
pub mod predictor;
pub mod provisioning;

pub use error::{CoreError, ProblemKind};
