//! The per-channel model the capacity analysis consumes.
//!
//! A [`ChannelModel`] bundles everything Sec. IV needs about one video
//! channel: streaming rate `r`, chunk playback time `T0`, per-VM bandwidth
//! `R`, measured arrival rate `Λ(c)`, first-chunk fraction `α`, and the
//! chunk transfer probability matrix `P(c)`.

use cloudmedia_queueing::jackson::{JacksonNetwork, RoutingMatrix};
use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, CoreError};

/// Model of one video channel at one provisioning instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Channel identifier.
    pub id: usize,
    /// Streaming playback rate `r`, bytes per second.
    pub streaming_rate: f64,
    /// Chunk playback time `T0`, seconds.
    pub chunk_seconds: f64,
    /// Guaranteed bandwidth per VM `R`, bytes per second; must exceed
    /// `streaming_rate`.
    pub vm_bandwidth: f64,
    /// External Poisson arrival rate `Λ(c)`, users per second.
    pub arrival_rate: f64,
    /// Fraction `α` of arrivals starting at the first chunk.
    pub alpha: f64,
    /// Chunk transfer probability matrix `P(c)` (substochastic rows).
    pub routing: Vec<Vec<f64>>,
}

impl ChannelModel {
    /// Number of chunks `J(c)`.
    pub fn chunks(&self) -> usize {
        self.routing.len()
    }

    /// Chunk size in bytes, `r · T0`.
    pub fn chunk_bytes(&self) -> f64 {
        self.streaming_rate * self.chunk_seconds
    }

    /// Per-server (per-VM) chunk service rate `µ = R / (r T0)`.
    pub fn service_rate(&self) -> f64 {
        self.vm_bandwidth / self.chunk_bytes()
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns an error for empty routing, non-positive rates, `R <= r`,
    /// or `alpha` outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.routing.is_empty() {
            return Err(invalid_param(
                "routing",
                "channel must have at least one chunk",
            ));
        }
        if !(self.streaming_rate.is_finite() && self.streaming_rate > 0.0) {
            return Err(invalid_param(
                "streaming_rate",
                format!("must be positive, got {}", self.streaming_rate),
            ));
        }
        if !(self.chunk_seconds.is_finite() && self.chunk_seconds > 0.0) {
            return Err(invalid_param(
                "chunk_seconds",
                format!("must be positive, got {}", self.chunk_seconds),
            ));
        }
        if !(self.vm_bandwidth.is_finite() && self.vm_bandwidth > self.streaming_rate) {
            return Err(invalid_param(
                "vm_bandwidth",
                format!(
                    "must exceed the streaming rate {} (paper requires R > r), got {}",
                    self.streaming_rate, self.vm_bandwidth
                ),
            ));
        }
        if !(self.arrival_rate.is_finite() && self.arrival_rate >= 0.0) {
            return Err(invalid_param(
                "arrival_rate",
                format!("must be non-negative, got {}", self.arrival_rate),
            ));
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(invalid_param(
                "alpha",
                format!("must be in [0, 1], got {}", self.alpha),
            ));
        }
        // Delegate routing validation (squareness, substochastic rows).
        RoutingMatrix::from_rows(&self.routing)?;
        Ok(())
    }

    /// Builds the open Jackson network of the channel: external arrivals
    /// split `α` to chunk 0 and uniform over the rest (paper Sec. IV-A).
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn jackson_network(&self) -> Result<JacksonNetwork, CoreError> {
        self.validate()?;
        let j = self.chunks();
        let mut gamma = vec![0.0; j];
        if j == 1 {
            gamma[0] = self.arrival_rate;
        } else {
            gamma[0] = self.alpha * self.arrival_rate;
            let rest = (1.0 - self.alpha) * self.arrival_rate / (j - 1) as f64;
            for g in gamma.iter_mut().skip(1) {
                *g = rest;
            }
        }
        let routing = RoutingMatrix::from_rows(&self.routing)?;
        Ok(JacksonNetwork::new(routing, gamma)?)
    }

    /// Per-chunk aggregate arrival rates `λ_i` from the traffic equations
    /// (paper Eqn. 1).
    ///
    /// # Errors
    ///
    /// Propagates validation and solver failures.
    pub fn chunk_arrival_rates(&self) -> Result<Vec<f64>, CoreError> {
        Ok(self.jackson_network()?.arrival_rates()?)
    }

    /// The paper's experimental channel parameters: `r` = 50 KB/s
    /// (400 kbps), `T0` = 5 min (15 MB chunks), `R` = 10 Mbps, 20 chunks
    /// (a 100-minute video), with the given arrival rate and a sequential
    /// viewing pattern built from jump/leave probabilities.
    pub fn paper_default(id: usize, arrival_rate: f64) -> Self {
        let chunks = 20;
        let jump_prob = 1.0 - (-5.0_f64 / 15.0).exp();
        let leave_prob = 0.08;
        let continue_prob = 1.0 - jump_prob - leave_prob;
        let mut routing = vec![vec![0.0; chunks]; chunks];
        for i in 0..chunks {
            let per_target = jump_prob / (chunks - 1) as f64;
            for (k, entry) in routing[i].iter_mut().enumerate() {
                if k != i {
                    *entry = per_target;
                }
            }
            if i + 1 < chunks {
                routing[i][i + 1] += continue_prob;
            }
        }
        Self {
            id,
            streaming_rate: 50_000.0,
            chunk_seconds: 300.0,
            vm_bandwidth: 10e6 / 8.0,
            arrival_rate,
            alpha: 0.7,
            routing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        let c = ChannelModel::paper_default(0, 0.5);
        c.validate().unwrap();
        assert_eq!(c.chunks(), 20);
        assert!((c.chunk_bytes() - 15e6).abs() < 1e-6, "15 MB chunks");
        assert!(
            (c.service_rate() - 1.0 / 12.0).abs() < 1e-9,
            "mu = 1/12 per s"
        );
    }

    #[test]
    fn arrival_rates_solve_and_conserve_flow() {
        let c = ChannelModel::paper_default(0, 1.0);
        let lambdas = c.chunk_arrival_rates().unwrap();
        assert_eq!(lambdas.len(), 20);
        // Every chunk sees some traffic; the first chunk the most external.
        assert!(lambdas.iter().all(|&l| l > 0.0));
        let net = c.jackson_network().unwrap();
        assert!(net.flow_imbalance().unwrap() < 1e-9);
    }

    #[test]
    fn early_chunks_busier_under_sequential_viewing() {
        let c = ChannelModel::paper_default(0, 1.0);
        let lambdas = c.chunk_arrival_rates().unwrap();
        // With alpha = 0.7 and mostly-sequential transitions, chunk 1
        // outranks late chunks.
        assert!(lambdas[0] > lambdas[15]);
    }

    #[test]
    fn zero_arrival_rate_is_fine() {
        let c = ChannelModel::paper_default(0, 0.0);
        let lambdas = c.chunk_arrival_rates().unwrap();
        assert!(lambdas.iter().all(|&l| l.abs() < 1e-12));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut c = ChannelModel::paper_default(0, 0.5);
        c.vm_bandwidth = 40_000.0; // below streaming rate: violates R > r
        assert!(c.validate().is_err());

        let mut c = ChannelModel::paper_default(0, 0.5);
        c.alpha = 1.5;
        assert!(c.validate().is_err());

        let mut c = ChannelModel::paper_default(0, 0.5);
        c.routing[0][1] = 2.0;
        assert!(c.validate().is_err());

        let mut c = ChannelModel::paper_default(0, 0.5);
        c.routing.clear();
        assert!(c.validate().is_err());

        let mut c = ChannelModel::paper_default(0, 0.5);
        c.arrival_rate = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn single_chunk_channel_routes_everything_to_it() {
        let c = ChannelModel {
            id: 0,
            streaming_rate: 50_000.0,
            chunk_seconds: 300.0,
            vm_bandwidth: 1.25e6,
            arrival_rate: 2.0,
            alpha: 0.3,
            routing: vec![vec![0.0]],
        };
        let lambdas = c.chunk_arrival_rates().unwrap();
        assert!((lambdas[0] - 2.0).abs() < 1e-12);
    }
}
