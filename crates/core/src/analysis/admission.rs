//! Admission-control analysis (extension).
//!
//! The paper provisions capacity to *meet* demand and signals "increase
//! the budget" when it cannot. An alternative under a hard capacity cap is
//! to admit only what the fleet can serve and reject the rest at the
//! tracker — this module quantifies that trade with the finite-capacity
//! `M/M/m/K` model: given a fixed VM count for a channel, what fraction of
//! chunk requests must be rejected to keep the admitted ones smooth?

use cloudmedia_queueing::mmmk::MmmkQueue;
use serde::{Deserialize, Serialize};

use crate::channel::ChannelModel;
use crate::error::{invalid_param, CoreError};

/// Outcome of analyzing a channel under a fixed VM allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionOutcome {
    /// VMs serving the channel pool.
    pub vms: usize,
    /// Waiting-room size `K − m` that keeps admitted requests within the
    /// playback window.
    pub waiting_room: usize,
    /// Fraction of chunk requests rejected at the tracker.
    pub rejection_probability: f64,
    /// Mean sojourn time of admitted requests, seconds.
    pub admitted_sojourn: f64,
}

/// Analyzes a channel whose pool is capped at `vms` VMs: the waiting room
/// is sized as large as possible while the *admitted* requests' mean
/// sojourn stays within `T0`, and the resulting rejection probability is
/// reported.
///
/// With enough VMs the rejection probability is ≈ 0 (the paper's regime);
/// as the cap shrinks below the equilibrium demand, rejections grow
/// instead of quality collapsing for everyone — the admission-control
/// trade.
///
/// # Errors
///
/// Propagates validation failures; rejects `vms == 0`.
pub fn admission_outcome(
    channel: &ChannelModel,
    vms: usize,
) -> Result<AdmissionOutcome, CoreError> {
    channel.validate()?;
    if vms == 0 {
        return Err(invalid_param("vms", "must be positive"));
    }
    let lambdas = channel.chunk_arrival_rates()?;
    let total_lambda: f64 = lambdas.iter().sum();
    let mu = channel.service_rate();
    let t0 = channel.chunk_seconds;

    if total_lambda == 0.0 {
        return Ok(AdmissionOutcome {
            vms,
            waiting_room: 0,
            rejection_probability: 0.0,
            admitted_sojourn: 1.0 / mu,
        });
    }

    // Grow the waiting room while admitted sojourn stays within T0; a
    // bigger room admits more (less rejection) but waits longer.
    let mut best = None;
    let mut k = vms;
    loop {
        let q = MmmkQueue::new(total_lambda, mu, vms, k)?;
        if q.mean_sojourn_time() <= t0 {
            best = Some((k, q.blocking_probability(), q.mean_sojourn_time()));
        } else {
            break;
        }
        // Blocking cannot improve once it is negligible.
        if q.blocking_probability() < 1e-9 {
            break;
        }
        k += (k / 4).max(1);
        if k > 200_000 {
            break;
        }
    }
    let (k, reject, sojourn) = best.ok_or_else(|| {
        invalid_param(
            "vms",
            format!("even a zero waiting room exceeds T0 with {vms} VMs"),
        )
    })?;
    Ok(AdmissionOutcome {
        vms,
        waiting_room: k - vms,
        rejection_probability: reject,
        admitted_sojourn: sojourn,
    })
}

/// Minimum VMs for a channel such that, with a suitable waiting room,
/// fewer than `epsilon` of chunk requests are rejected while admitted
/// requests stay within the playback window.
///
/// # Errors
///
/// Propagates validation failures; rejects `epsilon` outside `(0, 1)`.
pub fn min_vms_for_rejection(channel: &ChannelModel, epsilon: f64) -> Result<usize, CoreError> {
    channel.validate()?;
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(invalid_param(
            "epsilon",
            format!("must be in (0, 1), got {epsilon}"),
        ));
    }
    let lambdas = channel.chunk_arrival_rates()?;
    let total_lambda: f64 = lambdas.iter().sum();
    if total_lambda == 0.0 {
        return Ok(0);
    }
    let mu = channel.service_rate();
    let mut vms = 1;
    loop {
        // Overload floor check first (cheap).
        if (vms as f64) * mu > total_lambda * (1.0 - epsilon) {
            if let Ok(outcome) = admission_outcome(channel, vms) {
                if outcome.rejection_probability <= epsilon {
                    return Ok(vms);
                }
            }
        }
        vms += 1;
        if vms > 100_000 {
            return Err(invalid_param("epsilon", "no feasible VM count below 1e5"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmedia_queueing::mmm::min_servers_for_sojourn;

    fn channel(rate: f64) -> ChannelModel {
        ChannelModel::paper_default(0, rate)
    }

    #[test]
    fn ample_vms_reject_nothing() {
        let c = channel(0.3);
        let lambdas = c.chunk_arrival_rates().unwrap();
        let total: f64 = lambdas.iter().sum();
        let enough = min_servers_for_sojourn(total, c.service_rate(), c.chunk_seconds).unwrap() + 2;
        let o = admission_outcome(&c, enough).unwrap();
        assert!(
            o.rejection_probability < 1e-6,
            "rejection {}",
            o.rejection_probability
        );
        assert!(o.admitted_sojourn <= c.chunk_seconds);
    }

    #[test]
    fn scarce_vms_trade_rejections_for_admitted_quality() {
        let c = channel(0.3);
        let lambdas = c.chunk_arrival_rates().unwrap();
        let total: f64 = lambdas.iter().sum();
        let needed = min_servers_for_sojourn(total, c.service_rate(), c.chunk_seconds).unwrap();
        // Half the needed fleet: substantial rejection, but admitted
        // viewers still make their deadlines.
        let o = admission_outcome(&c, (needed / 2).max(1)).unwrap();
        assert!(
            o.rejection_probability > 0.2,
            "rejection {}",
            o.rejection_probability
        );
        assert!(o.admitted_sojourn <= c.chunk_seconds);
    }

    #[test]
    fn rejection_decreases_with_vms() {
        let c = channel(0.3);
        let mut prev = 1.0;
        for vms in [5, 10, 15, 20] {
            let o = admission_outcome(&c, vms).unwrap();
            assert!(o.rejection_probability <= prev + 1e-12, "vms {vms}");
            prev = o.rejection_probability;
        }
    }

    #[test]
    fn min_vms_meets_epsilon_and_relates_to_mean_provisioning() {
        let c = channel(0.3);
        let vms = min_vms_for_rejection(&c, 0.01).unwrap();
        let o = admission_outcome(&c, vms).unwrap();
        assert!(o.rejection_probability <= 0.01);
        // Near-zero rejection needs roughly the paper's mean-provisioned
        // fleet; 1% rejection may shave a VM or two but not more than 30%.
        let lambdas = c.chunk_arrival_rates().unwrap();
        let total: f64 = lambdas.iter().sum();
        let mean_m = min_servers_for_sojourn(total, c.service_rate(), c.chunk_seconds).unwrap();
        assert!(
            vms as f64 >= 0.7 * mean_m as f64,
            "vms {vms} vs mean {mean_m}"
        );
        assert!(vms <= mean_m + 2);
    }

    #[test]
    fn zero_arrivals_need_nothing() {
        let c = channel(0.0);
        assert_eq!(min_vms_for_rejection(&c, 0.05).unwrap(), 0);
        let o = admission_outcome(&c, 1).unwrap();
        assert_eq!(o.rejection_probability, 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let c = channel(0.2);
        assert!(admission_outcome(&c, 0).is_err());
        assert!(min_vms_for_rejection(&c, 0.0).is_err());
        assert!(min_vms_for_rejection(&c, 1.0).is_err());
    }
}
