//! Equilibrium server-capacity demand analysis (paper Sec. IV).
//!
//! [`client_server`] derives the per-chunk upload capacity a channel needs
//! for smooth playback when the cloud serves everything; [`p2p`] subtracts
//! the equilibrium peer contribution, leaving the deficit the cloud must
//! cover; [`admission`] analyzes the alternative of rejecting requests
//! under a hard capacity cap.

pub mod admission;
pub mod client_server;
pub mod p2p;

pub use admission::{admission_outcome, min_vms_for_rejection, AdmissionOutcome};
pub use client_server::{
    capacity_demand, capacity_demand_with_target, pooled_capacity_demand,
    pooled_capacity_demand_with_target, CapacityDemand, ProvisioningTarget,
};
pub use p2p::{
    p2p_capacity, p2p_capacity_hetero, p2p_capacity_opts, p2p_capacity_with, P2pAnalysisOptions,
    P2pCapacity, PsiEstimator, UploadClass,
};

use serde::{Deserialize, Serialize};

/// How per-chunk VM demand is pooled before provisioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DemandPooling {
    /// Paper-literal: every chunk queue gets its own integer server count
    /// `m_i` and demand `R·m_i`. Faithful to Sec. IV but over-provisions
    /// quiet channels (≥ 1 VM per active chunk).
    PerChunk,
    /// Fractional VM sharing within a channel (the paper's "one VM may
    /// serve several consecutive chunks"): one M/M/m pool per channel,
    /// apportioned to chunks by load. Default; required for the paper's
    /// Fig. 4/Fig. 7 scale.
    #[default]
    ChannelPooled,
}
