//! Client–server capacity analysis (paper Sec. IV-B).
//!
//! For each chunk queue the analysis derives the minimum number of
//! queueing-theoretic servers `m_i` (each mapping to one VM's bandwidth
//! `R`) such that the mean sojourn time — waiting plus download — does not
//! exceed the chunk playback time `T0`, which is the smooth-playback
//! condition. The cloud must then supply `Δ_i = R · m_i` of upload
//! capacity for chunk `i`.

use cloudmedia_queueing::mmm::{
    min_servers_for_sojourn, min_servers_for_sojourn_quantile, MmmQueue,
};
use serde::{Deserialize, Serialize};

use crate::channel::ChannelModel;
use crate::error::{invalid_param, CoreError};

/// What the per-queue server count must guarantee about chunk retrieval
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ProvisioningTarget {
    /// The paper's criterion: mean sojourn time at most `T0`.
    #[default]
    MeanSojourn,
    /// Tail-aware extension: `P(sojourn > T0) <= epsilon`, bounding the
    /// fraction of late chunk retrievals (and hence unsmooth playback)
    /// directly rather than through the mean.
    SojournQuantile {
        /// Allowed probability of exceeding the playback window.
        epsilon: f64,
    },
}

impl ProvisioningTarget {
    fn min_servers(&self, lambda: f64, mu: f64, t0: f64) -> Result<usize, CoreError> {
        match *self {
            ProvisioningTarget::MeanSojourn => Ok(min_servers_for_sojourn(lambda, mu, t0)?),
            ProvisioningTarget::SojournQuantile { epsilon } => {
                if !(epsilon > 0.0 && epsilon < 1.0) {
                    return Err(invalid_param(
                        "epsilon",
                        format!("must be in (0, 1), got {epsilon}"),
                    ));
                }
                Ok(min_servers_for_sojourn_quantile(lambda, mu, t0, epsilon)?)
            }
        }
    }
}

/// Equilibrium capacity demand of one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityDemand {
    /// Channel this demand belongs to.
    pub channel: usize,
    /// Aggregate arrival rate `λ_i` per chunk (paper Eqn. 1).
    pub arrival_rates: Vec<f64>,
    /// Required servers `m_i` per chunk.
    pub servers: Vec<usize>,
    /// Expected users in each chunk queue, `E(n_i)` (paper Eqn. 3).
    pub expected_in_queue: Vec<f64>,
    /// Total upload bandwidth needed per chunk, `s_i = R · m_i`, bytes/s.
    pub upload_demand: Vec<f64>,
}

impl CapacityDemand {
    /// Total upload bandwidth across chunks, bytes per second.
    pub fn total_upload_demand(&self) -> f64 {
        self.upload_demand.iter().sum()
    }

    /// Total expected concurrent users in the channel.
    pub fn expected_users(&self) -> f64 {
        self.expected_in_queue.iter().sum()
    }

    /// Total server count across chunks.
    pub fn total_servers(&self) -> usize {
        self.servers.iter().sum()
    }
}

/// Derives the equilibrium capacity demand for a channel: per-chunk
/// `λ_i` via the traffic equations, then the minimal `m_i` with mean
/// sojourn `≤ T0`, then `s_i = R m_i`.
///
/// In the client–server model the cloud supplies all of `s_i`
/// (`Δ_i = s_i`); the P2P analysis subtracts the peer contribution.
///
/// # Errors
///
/// Propagates validation and queueing failures (e.g. `T0` below the mean
/// chunk service time, which violates the paper's `R > r` assumption).
pub fn capacity_demand(channel: &ChannelModel) -> Result<CapacityDemand, CoreError> {
    capacity_demand_with_target(channel, ProvisioningTarget::MeanSojourn)
}

/// Like [`capacity_demand`], with an explicit retrieval-time guarantee
/// (the paper's mean criterion or the quantile extension).
///
/// # Errors
///
/// Propagates validation and queueing failures.
pub fn capacity_demand_with_target(
    channel: &ChannelModel,
    target: ProvisioningTarget,
) -> Result<CapacityDemand, CoreError> {
    channel.validate()?;
    let lambdas = channel.chunk_arrival_rates()?;
    let mu = channel.service_rate();
    let t0 = channel.chunk_seconds;
    let mut servers = Vec::with_capacity(lambdas.len());
    let mut expected = Vec::with_capacity(lambdas.len());
    let mut upload = Vec::with_capacity(lambdas.len());
    for &lambda in &lambdas {
        let m = target.min_servers(lambda, mu, t0)?;
        let e_n = if m == 0 {
            0.0
        } else {
            MmmQueue::new(lambda, mu, m)?.expected_in_system()
        };
        servers.push(m);
        expected.push(e_n);
        upload.push(m as f64 * channel.vm_bandwidth);
    }
    Ok(CapacityDemand {
        channel: channel.id,
        arrival_rates: lambdas,
        servers,
        expected_in_queue: expected,
        upload_demand: upload,
    })
}

/// Channel-pooled capacity demand: the paper allows a fractional VM to
/// serve several (preferably consecutive) chunks of one channel, so the
/// channel's chunk queues share a pooled server fleet. We size one M/M/m
/// pool for the channel's total chunk-request rate `Σ λ_i` (sojourn target
/// `T0`) and apportion its bandwidth to chunks in proportion to `λ_i`.
///
/// Without pooling, every active chunk needs at least one dedicated VM
/// (`m_i ≥ 1`), which with 20 channels × 20 chunks already exceeds the
/// paper's 150-VM fleet — pooling is what makes the paper's Fig. 4 scale
/// (and its Fig. 7 *linear* bandwidth-vs-users relation) reproducible.
///
/// # Errors
///
/// Propagates validation and queueing failures.
pub fn pooled_capacity_demand(channel: &ChannelModel) -> Result<CapacityDemand, CoreError> {
    pooled_capacity_demand_with_target(channel, ProvisioningTarget::MeanSojourn)
}

/// Like [`pooled_capacity_demand`], with an explicit retrieval-time
/// guarantee for the channel pool.
///
/// # Errors
///
/// Propagates validation and queueing failures.
pub fn pooled_capacity_demand_with_target(
    channel: &ChannelModel,
    target: ProvisioningTarget,
) -> Result<CapacityDemand, CoreError> {
    channel.validate()?;
    let lambdas = channel.chunk_arrival_rates()?;
    let mu = channel.service_rate();
    let t0 = channel.chunk_seconds;
    let total_lambda: f64 = lambdas.iter().sum();
    let pool_servers = target.min_servers(total_lambda, mu, t0)?;
    let pool_bandwidth = pool_servers as f64 * channel.vm_bandwidth;

    let mut servers = vec![0usize; lambdas.len()];
    let mut expected = vec![0.0; lambdas.len()];
    let mut upload = vec![0.0; lambdas.len()];
    if total_lambda > 0.0 {
        let pool = MmmQueue::new(total_lambda, mu, pool_servers)?;
        let total_expected = pool.expected_in_system();
        for (i, &lambda) in lambdas.iter().enumerate() {
            let share = lambda / total_lambda;
            upload[i] = pool_bandwidth * share;
            expected[i] = total_expected * share;
            // Integer bookkeeping: ceil of the fractional share, reported
            // for diagnostics only.
            servers[i] = (pool_servers as f64 * share).ceil() as usize;
        }
    }
    Ok(CapacityDemand {
        channel: channel.id,
        arrival_rates: lambdas,
        servers,
        expected_in_queue: expected,
        upload_demand: upload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_meets_sojourn_target_per_chunk() {
        let c = ChannelModel::paper_default(0, 0.5);
        let d = capacity_demand(&c).unwrap();
        let mu = c.service_rate();
        for (i, (&m, &lambda)) in d.servers.iter().zip(&d.arrival_rates).enumerate() {
            if lambda == 0.0 {
                continue;
            }
            let w = MmmQueue::new(lambda, mu, m).unwrap().mean_sojourn_time();
            assert!(w <= c.chunk_seconds + 1e-9, "chunk {i}: sojourn {w}");
        }
    }

    #[test]
    fn demand_scales_with_arrival_rate() {
        let lo = capacity_demand(&ChannelModel::paper_default(0, 0.1)).unwrap();
        let hi = capacity_demand(&ChannelModel::paper_default(0, 1.0)).unwrap();
        assert!(hi.total_upload_demand() > lo.total_upload_demand());
        assert!(hi.expected_users() > lo.expected_users());
    }

    #[test]
    fn demand_roughly_linear_in_load() {
        // Paper Fig. 7: client-server bandwidth grows linearly with channel
        // size. Doubling the arrival rate should roughly double demand.
        let base = capacity_demand(&ChannelModel::paper_default(0, 0.5)).unwrap();
        let double = capacity_demand(&ChannelModel::paper_default(0, 1.0)).unwrap();
        let ratio = double.total_upload_demand() / base.total_upload_demand();
        assert!((1.6..=2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn popular_chunks_get_more_servers() {
        let c = ChannelModel::paper_default(0, 1.0);
        let d = capacity_demand(&c).unwrap();
        // Chunk 1 (index 0) has the alpha mass; it needs at least as many
        // servers as the long tail.
        assert!(d.servers[0] >= d.servers[15]);
    }

    #[test]
    fn little_law_expected_users_bounded_by_sojourn_target() {
        // E(n_i) = lambda_i * W_i <= lambda_i * T0.
        let c = ChannelModel::paper_default(0, 0.8);
        let d = capacity_demand(&c).unwrap();
        for (e, l) in d.expected_in_queue.iter().zip(&d.arrival_rates) {
            assert!(*e <= l * c.chunk_seconds + 1e-9);
        }
    }

    #[test]
    fn zero_arrivals_need_zero_capacity() {
        let d = capacity_demand(&ChannelModel::paper_default(0, 0.0)).unwrap();
        assert_eq!(d.total_servers(), 0);
        assert_eq!(d.total_upload_demand(), 0.0);
    }

    #[test]
    fn upload_demand_is_r_times_servers() {
        let c = ChannelModel::paper_default(0, 0.7);
        let d = capacity_demand(&c).unwrap();
        for (&s, &m) in d.upload_demand.iter().zip(&d.servers) {
            assert!((s - m as f64 * c.vm_bandwidth).abs() < 1e-9);
        }
    }

    #[test]
    fn pooled_demand_is_much_cheaper_for_quiet_channels() {
        // A channel with 6 concurrent users: per-chunk provisioning wants
        // >= 1 VM per active chunk (~20 VMs); the pool needs a handful.
        let c = ChannelModel::paper_default(0, 0.02);
        let per_chunk = capacity_demand(&c).unwrap();
        let pooled = pooled_capacity_demand(&c).unwrap();
        assert!(
            pooled.total_upload_demand() < 0.35 * per_chunk.total_upload_demand(),
            "pooled {p} vs per-chunk {q}",
            p = pooled.total_upload_demand(),
            q = per_chunk.total_upload_demand()
        );
    }

    #[test]
    fn pooled_demand_meets_pool_sojourn_target() {
        let c = ChannelModel::paper_default(0, 0.8);
        let pooled = pooled_capacity_demand(&c).unwrap();
        let total_lambda: f64 = pooled.arrival_rates.iter().sum();
        let pool_servers = (pooled.total_upload_demand() / c.vm_bandwidth).round() as usize;
        let w = MmmQueue::new(total_lambda, c.service_rate(), pool_servers)
            .unwrap()
            .mean_sojourn_time();
        assert!(w <= c.chunk_seconds + 1e-9);
    }

    #[test]
    fn pooled_demand_proportional_to_chunk_load() {
        let c = ChannelModel::paper_default(0, 0.8);
        let pooled = pooled_capacity_demand(&c).unwrap();
        let ratio0 = pooled.upload_demand[0] / pooled.arrival_rates[0];
        for i in 1..c.chunks() {
            let r = pooled.upload_demand[i] / pooled.arrival_rates[i];
            assert!((r - ratio0).abs() / ratio0 < 1e-9, "chunk {i} share skewed");
        }
    }

    #[test]
    fn pooled_demand_scales_linearly_with_load() {
        // The paper's Fig. 7: C/S bandwidth is linear in channel size.
        let d1 = pooled_capacity_demand(&ChannelModel::paper_default(0, 0.3)).unwrap();
        let d2 = pooled_capacity_demand(&ChannelModel::paper_default(0, 0.6)).unwrap();
        let ratio = d2.total_upload_demand() / d1.total_upload_demand();
        assert!((1.7..=2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn quantile_target_provisions_more_than_mean() {
        let c = ChannelModel::paper_default(0, 0.5);
        let mean = pooled_capacity_demand(&c).unwrap();
        let tail = pooled_capacity_demand_with_target(
            &c,
            ProvisioningTarget::SojournQuantile { epsilon: 0.01 },
        )
        .unwrap();
        assert!(tail.total_upload_demand() >= mean.total_upload_demand());
    }

    #[test]
    fn quantile_target_tightens_with_epsilon() {
        let c = ChannelModel::paper_default(0, 0.5);
        let loose = pooled_capacity_demand_with_target(
            &c,
            ProvisioningTarget::SojournQuantile { epsilon: 0.2 },
        )
        .unwrap();
        let tight = pooled_capacity_demand_with_target(
            &c,
            ProvisioningTarget::SojournQuantile { epsilon: 0.001 },
        )
        .unwrap();
        assert!(tight.total_upload_demand() >= loose.total_upload_demand());
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let c = ChannelModel::paper_default(0, 0.5);
        assert!(capacity_demand_with_target(
            &c,
            ProvisioningTarget::SojournQuantile { epsilon: 0.0 }
        )
        .is_err());
        assert!(capacity_demand_with_target(
            &c,
            ProvisioningTarget::SojournQuantile { epsilon: 1.0 }
        )
        .is_err());
    }

    #[test]
    fn pooled_zero_arrivals_zero_demand() {
        let d = pooled_capacity_demand(&ChannelModel::paper_default(0, 0.0)).unwrap();
        assert_eq!(d.total_upload_demand(), 0.0);
    }
}
