//! P2P capacity analysis (paper Sec. IV-C).
//!
//! In P2P VoD the required per-chunk upload bandwidth `s_i = R·m_i` is
//! covered by two sources: peers who buffer the chunk (`Γ_i`) and the
//! cloud (`Δ_i = R·m_i − Γ_i`). This module derives the equilibrium chunk
//! replica counts (Proposition 1), the joint-ownership probability
//! `Ψ(π_j, π_k)` (two estimators — the paper's closed form lives in an
//! unavailable technical report, see DESIGN.md), and the rarest-first
//! waterfilling of peer upload bandwidth (paper Eqn. 5).

use cloudmedia_queueing::absorbing::AbsorbingChain;
use cloudmedia_queueing::jackson::RoutingMatrix;
use cloudmedia_queueing::linalg::Matrix;
use cloudmedia_telemetry::GlobalCounter;
use serde::{Deserialize, Serialize};

/// Replica-matrix rows recovered through the Sherman–Morrison rank-one
/// fast path ([`replica_matrix`]), process lifetime. Read as
/// before/after deltas by the telemetry plane, alongside the
/// direct-elimination counters in [`cloudmedia_queueing::linalg`], to
/// show how often the `O(J²)` path carries the provisioning load.
pub static SHERMAN_MORRISON_UPDATES: GlobalCounter = GlobalCounter::new();

/// Replica-matrix rows that fell back to the direct per-chunk deleted-
/// system elimination (singular `M` or a degenerate rank-one update),
/// process lifetime.
pub static SHERMAN_MORRISON_FALLBACKS: GlobalCounter = GlobalCounter::new();

#[cfg(test)]
use crate::analysis::client_server::pooled_capacity_demand;
use crate::analysis::client_server::{
    capacity_demand, capacity_demand_with_target, pooled_capacity_demand_with_target,
    CapacityDemand, ProvisioningTarget,
};
use crate::analysis::DemandPooling;
use crate::channel::ChannelModel;
use crate::error::{invalid_param, CoreError};

/// How the joint chunk-ownership probability `Ψ(π_j, π_k)` is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PsiEstimator {
    /// Independence approximation: `Ψ = (ν_j / N)(ν_k / N)` where `N` is
    /// the expected channel population. Cheap and the default.
    #[default]
    Independent,
    /// Path-based: the probability that a random viewer trajectory through
    /// the chunk Markov chain visits both queues, computed exactly from
    /// hit-before and hitting probabilities. Captures the strong positive
    /// correlation of sequential viewing.
    PathBased,
}

/// Result of the P2P capacity analysis for one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2pCapacity {
    /// The underlying client–server demand (arrival rates, `m_i`, `s_i`).
    pub demand: CapacityDemand,
    /// Expected replica count `E(ν_i)` per chunk — peers elsewhere in the
    /// channel who buffer chunk `i` (paper Eqn. 4).
    pub replicas: Vec<f64>,
    /// Expected peer upload contribution `E(Γ_i)` per chunk, bytes/s
    /// (paper Eqn. 5).
    pub peer_contribution: Vec<f64>,
    /// Expected capacity the cloud must supply per chunk,
    /// `E(Δ_i) = R·m_i − E(Γ_i)`, bytes/s.
    pub cloud_demand: Vec<f64>,
}

impl P2pCapacity {
    /// Total cloud demand across chunks, bytes per second.
    pub fn total_cloud_demand(&self) -> f64 {
        self.cloud_demand.iter().sum()
    }

    /// Total peer contribution across chunks, bytes per second.
    pub fn total_peer_contribution(&self) -> f64 {
        self.peer_contribution.iter().sum()
    }
}

/// Derives the expected replica matrix `E(ν_ij)` — peers in queue `j` who
/// have buffered chunk `i` — by solving Proposition 1's fixed point
/// `E(ν_ij) = Σ_l E(ν_il) P_lj (j ≠ i)` with `E(ν_ii) = E(n_i)`, one
/// linear system per chunk `i`.
///
/// All `J` per-chunk systems are principal submatrices of the same
/// `M = I − Pᵀ` (row/column `i` deleted), so instead of `J` independent
/// `O(J³)` eliminations this factorizes `M` **once**, computes its
/// inverse columns, and recovers each deleted-row solution with a
/// Sherman–Morrison rank-one update in `O(J²)` — `O(J³ + J·J²)` total,
/// roughly `J/3` times fewer flops. The controller runs this for every
/// channel every provisioning interval, which made it the hottest part
/// of the P2P provisioning phase. An ill-conditioned update (denominator
/// collapse, never observed for substochastic routing) falls back to the
/// direct per-chunk elimination.
///
/// Returns the full matrix (row `i`, column `j`).
///
/// # Errors
///
/// Propagates routing validation and solver failures.
pub fn replica_matrix(
    routing: &[Vec<f64>],
    expected_in_queue: &[f64],
) -> Result<Vec<Vec<f64>>, CoreError> {
    let j_count = routing.len();
    if expected_in_queue.len() != j_count {
        return Err(invalid_param(
            "expected_in_queue",
            format!(
                "expected {j_count} entries, got {}",
                expected_in_queue.len()
            ),
        ));
    }
    RoutingMatrix::from_rows(routing)?;
    let mut result = vec![vec![0.0; j_count]; j_count];
    if j_count == 1 {
        result[0][0] = expected_in_queue[0];
        return Ok(result);
    }
    let n = j_count;
    // M = I − Pᵀ: M[j][l] = δ_jl − P_lj.
    let mut m = Matrix::zeros(n, n);
    for j in 0..n {
        for (l, row) in routing.iter().enumerate() {
            m[(j, l)] = f64::from(u8::from(j == l)) - row[j];
        }
    }
    let Ok(lu) = m.lu() else {
        // M = I − Pᵀ is singular for perfectly recirculating routing
        // (row sums exactly 1, no departures) — a valid input whose
        // *deleted* per-chunk systems are still well posed. Solve them
        // directly, as the original algorithm did.
        for (i, (out, &occupancy)) in result.iter_mut().zip(expected_in_queue).enumerate() {
            SHERMAN_MORRISON_FALLBACKS.inc();
            replica_row_direct(routing, occupancy, i, out)?;
        }
        return Ok(result);
    };
    // Inverse columns: inv[i·n ..][k] = (M⁻¹ e_i)_k.
    let mut inv = vec![0.0; n * n];
    let mut scratch = Vec::with_capacity(n);
    for i in 0..n {
        let col = &mut inv[i * n..(i + 1) * n];
        col[i] = 1.0;
        lu.solve_into(col, &mut scratch);
    }
    let mut z = vec![0.0; n];
    for (i, (out, &occupancy)) in result.iter_mut().zip(expected_in_queue).enumerate() {
        // Deleting row/column i of M equals replacing row i by e_iᵀ and
        // pinning x_i = 0: M' = M + e_i vᵀ with v_l = P_li (column i of
        // the routing matrix). Solve M' y = c, c_j = P_ij (j ≠ i),
        // c_i = 0, then scale by E(n_i) — the RHS is linear in it.
        z.iter_mut().for_each(|x| *x = 0.0);
        for (j, &c_j) in routing[i].iter().enumerate() {
            if j == i || c_j == 0.0 {
                continue;
            }
            let col = &inv[j * n..(j + 1) * n];
            for (zk, &ck) in z.iter_mut().zip(col) {
                *zk += c_j * ck;
            }
        }
        let inv_i = &inv[i * n..(i + 1) * n];
        let mut v_dot_z = 0.0;
        let mut v_dot_inv_i = 0.0;
        for (l, row) in routing.iter().enumerate() {
            let v_l = row[i];
            v_dot_z += v_l * z[l];
            v_dot_inv_i += v_l * inv_i[l];
        }
        let denom = 1.0 + v_dot_inv_i;
        if denom.abs() < 1e-10 {
            // Rank-one update degenerate: solve this row's deleted
            // system directly (never hit for valid routing; kept as a
            // correctness backstop).
            SHERMAN_MORRISON_FALLBACKS.inc();
            replica_row_direct(routing, occupancy, i, out)?;
            continue;
        }
        SHERMAN_MORRISON_UPDATES.inc();
        let correction = v_dot_z / denom;
        for (j, out_j) in out.iter_mut().enumerate() {
            if j == i {
                *out_j = occupancy;
            } else {
                *out_j = (occupancy * (z[j] - correction * inv_i[j])).max(0.0);
            }
        }
    }
    Ok(result)
}

/// Direct elimination fallback for one row of [`replica_matrix`]: the
/// original per-chunk deleted-system solve.
#[allow(clippy::needless_range_loop)] // index math mirrors the paper's equations
fn replica_row_direct(
    routing: &[Vec<f64>],
    occupancy: f64,
    i: usize,
    out: &mut [f64],
) -> Result<(), CoreError> {
    let j_count = routing.len();
    let n = j_count - 1;
    let map = |j: usize| if j < i { j } else { j - 1 };
    let mut a = Matrix::identity(n);
    let mut b = vec![0.0; n];
    for j in 0..j_count {
        if j == i {
            continue;
        }
        let row = map(j);
        // x_j - sum_{l != i} P_lj x_l = E(n_i) P_ij
        for l in 0..j_count {
            if l == i {
                continue;
            }
            a[(row, map(l))] -= routing[l][j];
        }
        b[row] = occupancy * routing[i][j];
    }
    let x = a.solve(&b).map_err(CoreError::from)?;
    out[i] = occupancy;
    for j in 0..j_count {
        if j != i {
            out[j] = x[map(j)].max(0.0);
        }
    }
    Ok(())
}

/// Expected total replica count per chunk: `E(ν_i) = Σ_{j≠i} E(ν_ij)`
/// (paper Eqn. 4 — peers *currently downloading* chunk `i` are not
/// counted as suppliers).
pub fn replica_counts(matrix: &[Vec<f64>]) -> Vec<f64> {
    let n = matrix.len();
    (0..n)
        .map(|i| (0..n).filter(|&j| j != i).map(|j| matrix[i][j]).sum())
        .collect()
}

/// Computes the expected number of peers owning **both** chunks of every
/// pair, as `Ψ(j, k) · N`, under the chosen estimator.
fn dual_ownership(
    channel: &ChannelModel,
    replicas: &[f64],
    population: f64,
    estimator: PsiEstimator,
) -> Result<Vec<Vec<f64>>, CoreError> {
    let j_count = channel.chunks();
    let mut dual = vec![vec![0.0; j_count]; j_count];
    match estimator {
        PsiEstimator::Independent => {
            if population <= 0.0 {
                return Ok(dual);
            }
            for j in 0..j_count {
                for k in 0..j_count {
                    if j != k {
                        dual[j][k] = replicas[j] * replicas[k] / population;
                    }
                }
            }
        }
        PsiEstimator::PathBased => {
            let routing = RoutingMatrix::from_rows(&channel.routing)?;
            let chain = AbsorbingChain::new(routing)?;
            // Start distribution: alpha at chunk 0, uniform elsewhere.
            let mut start = vec![0.0; j_count];
            if j_count == 1 {
                start[0] = 1.0;
            } else {
                start[0] = channel.alpha;
                let rest = (1.0 - channel.alpha) / (j_count - 1) as f64;
                for s in start.iter_mut().skip(1) {
                    *s = rest;
                }
            }
            for j in 0..j_count {
                for k in (j + 1)..j_count {
                    let psi = chain.visits_both(&start, j, k)?;
                    let owners = psi * population;
                    // Cannot exceed either chunk's replica pool.
                    let capped = owners.min(replicas[j]).min(replicas[k]);
                    dual[j][k] = capped;
                    dual[k][j] = capped;
                }
            }
        }
    }
    Ok(dual)
}

/// Full P2P capacity analysis of one channel: client–server demand, the
/// Proposition 1 replica counts, the Eqn. 5 rarest-first waterfilling of
/// peer bandwidth, and the resulting cloud demand `Δ_i`.
///
/// `mean_upload` is the average per-peer upload capacity `u` in bytes per
/// second (the paper's homogeneous-upload simplification; use the mean of
/// the Pareto distribution for the heterogeneous experiments).
///
/// # Errors
///
/// Propagates validation, queueing, and solver failures; rejects
/// non-positive `mean_upload`.
pub fn p2p_capacity(
    channel: &ChannelModel,
    mean_upload: f64,
    estimator: PsiEstimator,
) -> Result<P2pCapacity, CoreError> {
    p2p_capacity_with(channel, mean_upload, estimator, DemandPooling::PerChunk)
}

/// Options bundle for [`p2p_capacity_opts`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct P2pAnalysisOptions {
    /// Joint-ownership estimator for the waterfilling deduction.
    pub psi: PsiEstimator,
    /// Demand pooling of the baseline capacity.
    pub pooling: DemandPooling,
    /// Retrieval-time guarantee of the baseline capacity.
    pub target: ProvisioningTarget,
}

/// Like [`p2p_capacity`], with an explicit demand-pooling model: the
/// waterfilling (Eqn. 5) always uses the per-chunk queueing quantities,
/// while the baseline capacity the peers offset can be per-chunk
/// (paper-literal) or channel-pooled (fractional VM sharing; see
/// [`pooled_capacity_demand`](crate::analysis::client_server::pooled_capacity_demand)).
///
/// # Errors
///
/// Propagates validation, queueing, and solver failures.
pub fn p2p_capacity_with(
    channel: &ChannelModel,
    mean_upload: f64,
    estimator: PsiEstimator,
    pooling: DemandPooling,
) -> Result<P2pCapacity, CoreError> {
    p2p_capacity_opts(
        channel,
        mean_upload,
        P2pAnalysisOptions {
            psi: estimator,
            pooling,
            target: ProvisioningTarget::MeanSojourn,
        },
    )
}

/// Full-control variant of [`p2p_capacity`]: estimator, pooling, and the
/// retrieval-time guarantee of the baseline capacity.
///
/// # Errors
///
/// Propagates validation, queueing, and solver failures.
pub fn p2p_capacity_opts(
    channel: &ChannelModel,
    mean_upload: f64,
    opts: P2pAnalysisOptions,
) -> Result<P2pCapacity, CoreError> {
    if !(mean_upload.is_finite() && mean_upload >= 0.0) {
        return Err(invalid_param(
            "mean_upload",
            format!("must be finite and non-negative, got {mean_upload}"),
        ));
    }
    p2p_capacity_hetero(
        channel,
        &[UploadClass {
            share: 1.0,
            upload: mean_upload,
        }],
        opts,
    )
}

/// One peer upload class for the heterogeneous-bandwidth analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UploadClass {
    /// Fraction of the peer population in this class, in `(0, 1]`.
    pub share: f64,
    /// Per-peer upload capacity of the class, bytes per second.
    pub upload: f64,
}

/// Heterogeneous-bandwidth P2P capacity analysis — the extension the
/// paper sketches ("the analysis can be readily extended to cases with
/// heterogeneous bandwidths"). Peer classes are assumed independent of
/// viewing position, so each chunk's replica pool splits across classes
/// by population share; the rarest-first waterfilling then draws from
/// richer classes first, deducting dual-ownership commitments per class.
///
/// With a single class this reduces exactly to [`p2p_capacity_opts`].
///
/// # Errors
///
/// Propagates validation, queueing, and solver failures; rejects empty or
/// malformed class lists (shares must be positive and sum to 1).
pub fn p2p_capacity_hetero(
    channel: &ChannelModel,
    classes: &[UploadClass],
    opts: P2pAnalysisOptions,
) -> Result<P2pCapacity, CoreError> {
    let estimator = opts.psi;
    if classes.is_empty() {
        return Err(invalid_param(
            "classes",
            "at least one upload class required",
        ));
    }
    let mut share_sum = 0.0;
    for c in classes {
        if !(c.share > 0.0 && c.share <= 1.0) {
            return Err(invalid_param(
                "classes",
                format!("share must be in (0, 1], got {}", c.share),
            ));
        }
        if !(c.upload.is_finite() && c.upload >= 0.0) {
            return Err(invalid_param(
                "classes",
                format!("upload must be finite and non-negative, got {}", c.upload),
            ));
        }
        share_sum += c.share;
    }
    if (share_sum - 1.0).abs() > 1e-9 {
        return Err(invalid_param(
            "classes",
            format!("shares must sum to 1, got {share_sum}"),
        ));
    }
    let demand = capacity_demand(channel)?;
    // Equilibrium chunk-queue occupancy: the paper derives m_i from
    // `E(n_i) = λ_i T0` (mean sojourn pinned to the playback time), so in
    // its equilibrium each chunk queue holds λ_i·T0 viewers — these are
    // the future owners Proposition 1 propagates. (Our integer m_i gives
    // sojourn ≤ T0, so the raw M/M/m occupancy would undercount owners.)
    let occupancy: Vec<f64> = demand
        .arrival_rates
        .iter()
        .map(|&l| l * channel.chunk_seconds)
        .collect();
    let matrix = replica_matrix(&channel.routing, &occupancy)?;
    let replicas = replica_counts(&matrix);
    let population: f64 = occupancy.iter().sum();
    let dual = dual_ownership(channel, &replicas, population, estimator)?;

    let j_count = channel.chunks();
    // Rarest first: ascending replica count.
    let mut order: Vec<usize> = (0..j_count).collect();
    order.sort_by(|&a, &b| {
        replicas[a]
            .partial_cmp(&replicas[b])
            .expect("replica counts are finite")
    });

    let r = channel.streaming_rate;
    // Richer classes are drawn from first at each chunk.
    let mut class_order: Vec<usize> = (0..classes.len()).collect();
    class_order.sort_by(|&a, &b| {
        classes[b]
            .upload
            .partial_cmp(&classes[a].upload)
            .expect("uploads are finite")
    });
    // Per-class peer contribution to each chunk.
    let mut gamma_class = vec![vec![0.0; classes.len()]; j_count];
    let mut gamma = vec![0.0; j_count];
    for (pos, &k) in order.iter().enumerate() {
        // Demand-side cap (paper Eqn. 5's "bandwidth demand to address its
        // download requests"): the chunk's concurrent downloaders, each
        // consuming at the streaming rate — `E(n_k)·r = λ_k·T0·r`. Peer
        // service never exceeds the chunk's streaming throughput; the
        // cloud keeps the remaining capacity as the quality margin.
        let mut room = occupancy[k] * r;
        for &ci in &class_order {
            if room <= 0.0 {
                break;
            }
            let class = &classes[ci];
            // Supply from this class's owners of chunk k, minus bandwidth
            // those owners already promised to rarer chunks.
            let mut supply = replicas[k] * class.share * class.upload;
            for &j in order.iter().take(pos) {
                if replicas[j] <= 0.0 || gamma_class[j][ci] <= 0.0 {
                    continue;
                }
                // dual[j][k]·share peers of this class own both; each
                // gives gamma_class[j][ci] / (nu_j · share) to chunk j.
                supply -= dual[j][k] * gamma_class[j][ci] / replicas[j];
            }
            let take = supply.max(0.0).min(room);
            gamma_class[k][ci] = take;
            gamma[k] += take;
            room -= take;
        }
    }

    let baseline: Vec<f64> = match opts.pooling {
        DemandPooling::PerChunk => match opts.target {
            ProvisioningTarget::MeanSojourn => demand.upload_demand.clone(),
            other => capacity_demand_with_target(channel, other)?.upload_demand,
        },
        DemandPooling::ChannelPooled => {
            pooled_capacity_demand_with_target(channel, opts.target)?.upload_demand
        }
    };
    let cloud_demand: Vec<f64> = (0..j_count)
        .map(|i| (baseline[i] - gamma[i]).max(0.0))
        .collect();
    Ok(P2pCapacity {
        demand,
        replicas,
        peer_contribution: gamma,
        cloud_demand,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(rate: f64) -> ChannelModel {
        ChannelModel::paper_default(0, rate)
    }

    #[test]
    fn replica_matrix_satisfies_proposition_1() {
        let c = channel(0.8);
        let d = capacity_demand(&c).unwrap();
        let m = replica_matrix(&c.routing, &d.expected_in_queue).unwrap();
        let j = c.chunks();
        #[allow(clippy::needless_range_loop)]
        for i in 0..j {
            assert!(
                (m[i][i] - d.expected_in_queue[i]).abs() < 1e-9,
                "nu_ii = E(n_i)"
            );
            for col in 0..j {
                if col == i {
                    continue;
                }
                let rhs: f64 = (0..j).map(|l| m[i][l] * c.routing[l][col]).sum();
                assert!(
                    (m[i][col] - rhs).abs() < 1e-8,
                    "Prop 1 violated at ({i},{col}): {} vs {rhs}",
                    m[i][col]
                );
            }
        }
    }

    #[test]
    fn replica_matrix_handles_singular_recirculating_routing() {
        // Perfectly recirculating routing (row sums exactly 1, no
        // departures) makes the full M = I − Pᵀ singular, but every
        // *deleted* per-chunk system is still well posed; the LU +
        // Sherman–Morrison fast path must fall back to the direct
        // per-row elimination instead of erroring.
        let routing = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let occupancy = vec![3.0, 5.0];
        let m = replica_matrix(&routing, &occupancy).unwrap();
        assert_eq!(m[0][0], 3.0);
        assert_eq!(m[1][1], 5.0);
        // Row 0's deleted system: x_1 = E(n_0)·P_01 = 3 (no other
        // chunks feed chunk 1 once chunk 0's queue is pinned).
        assert!((m[0][1] - 3.0).abs() < 1e-9, "got {}", m[0][1]);
        assert!((m[1][0] - 5.0).abs() < 1e-9, "got {}", m[1][0]);
    }

    #[test]
    fn replicas_nonnegative_and_scale_with_load() {
        let lo = p2p_capacity(&channel(0.2), 50_000.0, PsiEstimator::Independent).unwrap();
        let hi = p2p_capacity(&channel(1.0), 50_000.0, PsiEstimator::Independent).unwrap();
        assert!(lo.replicas.iter().all(|&v| v >= 0.0));
        let lo_total: f64 = lo.replicas.iter().sum();
        let hi_total: f64 = hi.replicas.iter().sum();
        assert!(hi_total > lo_total);
    }

    #[test]
    fn early_chunks_have_more_replicas_under_sequential_viewing() {
        let p = p2p_capacity(&channel(1.0), 50_000.0, PsiEstimator::Independent).unwrap();
        // Sequential watchers accumulate early chunks; chunk 0 is owned by
        // nearly everyone downstream.
        assert!(
            p.replicas[0] > p.replicas[15],
            "chunk 0 replicas {} vs chunk 15 {}",
            p.replicas[0],
            p.replicas[15]
        );
    }

    #[test]
    fn cloud_demand_at_most_client_server_demand() {
        let cs = capacity_demand(&channel(0.8)).unwrap();
        let p2p = p2p_capacity(&channel(0.8), 50_000.0, PsiEstimator::Independent).unwrap();
        for i in 0..cs.upload_demand.len() {
            assert!(p2p.cloud_demand[i] <= cs.upload_demand[i] + 1e-9);
        }
        assert!(p2p.total_cloud_demand() < cs.total_upload_demand());
    }

    #[test]
    fn zero_upload_peers_contribute_nothing() {
        let p = p2p_capacity(&channel(0.8), 0.0, PsiEstimator::Independent).unwrap();
        assert_eq!(p.total_peer_contribution(), 0.0);
        for (d, s) in p.cloud_demand.iter().zip(&p.demand.upload_demand) {
            assert!((d - s).abs() < 1e-9, "cloud covers everything");
        }
    }

    #[test]
    fn richer_peers_reduce_cloud_demand() {
        let poor = p2p_capacity(&channel(0.8), 45_000.0, PsiEstimator::Independent).unwrap();
        let rich = p2p_capacity(&channel(0.8), 60_000.0, PsiEstimator::Independent).unwrap();
        assert!(rich.total_cloud_demand() <= poor.total_cloud_demand() + 1e-9);
        assert!(rich.total_peer_contribution() >= poor.total_peer_contribution() - 1e-9);
    }

    #[test]
    fn peer_contribution_capped_by_streaming_demand() {
        let c = channel(0.8);
        let p = p2p_capacity(&c, 1e9, PsiEstimator::Independent).unwrap();
        for (i, &g) in p.peer_contribution.iter().enumerate() {
            // Cap: concurrent downloaders (lambda_i T0) at streaming rate.
            let cap = p.demand.arrival_rates[i] * c.chunk_seconds * c.streaming_rate;
            assert!(g <= cap + 1e-6, "chunk {i}: gamma {g} above cap {cap}");
        }
    }

    #[test]
    fn sufficient_peers_cover_most_streaming_demand() {
        // With mean upload above the streaming rate, peers should cover
        // the bulk of the streaming throughput (the paper's ~10x cloud
        // cost reduction), leaving the cloud mostly the queueing margin.
        let c = channel(0.8);
        let p = p2p_capacity_with(
            &c,
            60_000.0, // 1.2x streaming rate
            PsiEstimator::Independent,
            DemandPooling::ChannelPooled,
        )
        .unwrap();
        let pooled = pooled_capacity_demand(&c).unwrap();
        assert!(
            p.total_cloud_demand() < 0.35 * pooled.total_upload_demand(),
            "cloud {c} vs pooled baseline {b}",
            c = p.total_cloud_demand(),
            b = pooled.total_upload_demand()
        );
    }

    #[test]
    fn path_based_psi_also_produces_valid_allocation() {
        let c = channel(0.8);
        let ind = p2p_capacity(&c, 50_000.0, PsiEstimator::Independent).unwrap();
        let path = p2p_capacity(&c, 50_000.0, PsiEstimator::PathBased).unwrap();
        for p in [&ind, &path] {
            assert!(p.peer_contribution.iter().all(|&g| g >= 0.0));
            assert!(p.cloud_demand.iter().all(|&d| d >= 0.0));
        }
        // Path-based sees stronger ownership overlap (sequential viewing),
        // so it deducts at least as much shared bandwidth: peers appear
        // less plentiful, cloud demand does not shrink.
        assert!(
            path.total_peer_contribution() <= ind.total_peer_contribution() + 1e-6,
            "path {p} vs independent {i}",
            p = path.total_peer_contribution(),
            i = ind.total_peer_contribution()
        );
    }

    #[test]
    fn zero_arrival_channel_needs_nothing() {
        let p = p2p_capacity(&channel(0.0), 50_000.0, PsiEstimator::Independent).unwrap();
        assert_eq!(p.total_cloud_demand(), 0.0);
        assert_eq!(p.total_peer_contribution(), 0.0);
    }

    #[test]
    fn single_chunk_channel_replicas_are_zero() {
        // With one chunk there are no "peers in other queues" to supply it.
        let c = ChannelModel {
            id: 0,
            streaming_rate: 50_000.0,
            chunk_seconds: 300.0,
            vm_bandwidth: 1.25e6,
            arrival_rate: 1.0,
            alpha: 1.0,
            routing: vec![vec![0.0]],
        };
        let p = p2p_capacity(&c, 50_000.0, PsiEstimator::Independent).unwrap();
        assert_eq!(p.replicas, vec![0.0]);
        assert_eq!(p.total_peer_contribution(), 0.0);
    }

    #[test]
    fn single_class_hetero_equals_homogeneous() {
        let c = channel(0.8);
        let opts = P2pAnalysisOptions::default();
        let homo = p2p_capacity_opts(&c, 40_000.0, opts).unwrap();
        let hetero = p2p_capacity_hetero(
            &c,
            &[UploadClass {
                share: 1.0,
                upload: 40_000.0,
            }],
            opts,
        )
        .unwrap();
        assert_eq!(homo, hetero);
    }

    #[test]
    fn mean_preserving_spread_changes_little_but_stays_valid() {
        // Two classes with the same mean as the homogeneous case.
        let c = channel(0.8);
        let opts = P2pAnalysisOptions::default();
        let homo = p2p_capacity_opts(&c, 40_000.0, opts).unwrap();
        let hetero = p2p_capacity_hetero(
            &c,
            &[
                UploadClass {
                    share: 0.5,
                    upload: 20_000.0,
                },
                UploadClass {
                    share: 0.5,
                    upload: 60_000.0,
                },
            ],
            opts,
        )
        .unwrap();
        assert!(hetero.peer_contribution.iter().all(|&g| g >= 0.0));
        assert!(hetero.cloud_demand.iter().all(|&d| d >= 0.0));
        // Same aggregate supply: totals within 20% of the homogeneous case.
        let ratio = hetero.total_peer_contribution() / homo.total_peer_contribution();
        assert!((0.8..=1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn richer_class_mix_contributes_more() {
        let c = channel(0.8);
        let opts = P2pAnalysisOptions::default();
        let poor = p2p_capacity_hetero(
            &c,
            &[
                UploadClass {
                    share: 0.8,
                    upload: 10_000.0,
                },
                UploadClass {
                    share: 0.2,
                    upload: 30_000.0,
                },
            ],
            opts,
        )
        .unwrap();
        let rich = p2p_capacity_hetero(
            &c,
            &[
                UploadClass {
                    share: 0.8,
                    upload: 30_000.0,
                },
                UploadClass {
                    share: 0.2,
                    upload: 90_000.0,
                },
            ],
            opts,
        )
        .unwrap();
        assert!(rich.total_peer_contribution() > poor.total_peer_contribution());
        assert!(rich.total_cloud_demand() < poor.total_cloud_demand());
    }

    #[test]
    fn hetero_rejects_bad_classes() {
        let c = channel(0.5);
        let opts = P2pAnalysisOptions::default();
        assert!(p2p_capacity_hetero(&c, &[], opts).is_err());
        assert!(
            p2p_capacity_hetero(
                &c,
                &[UploadClass {
                    share: 0.5,
                    upload: 1e4
                }],
                opts
            )
            .is_err(),
            "shares must sum to 1"
        );
        assert!(p2p_capacity_hetero(
            &c,
            &[
                UploadClass {
                    share: 0.5,
                    upload: 1e4
                },
                UploadClass {
                    share: 0.5,
                    upload: -1.0
                },
            ],
            opts
        )
        .is_err());
    }

    #[test]
    fn invalid_upload_rejected() {
        assert!(p2p_capacity(&channel(0.5), -1.0, PsiEstimator::Independent).is_err());
        assert!(p2p_capacity(&channel(0.5), f64::NAN, PsiEstimator::Independent).is_err());
    }

    #[test]
    fn replica_matrix_rejects_mismatched_input() {
        let c = channel(0.5);
        assert!(replica_matrix(&c.routing, &[1.0, 2.0]).is_err());
    }
}
