//! The two cloud provisioning optimizations (paper Sec. V-A): storage
//! rental (which NFS cluster stores each chunk) and VM configuration (how
//! many VMs of each class to rent), each with the paper's greedy heuristic
//! and an exact baseline for gap measurement.

pub mod storage;
pub mod vm;

pub use storage::{
    demands_from_channels, placement_utility, ChunkDemand, StoragePlan, StorageProblem,
};
pub use vm::{ChunkAllocation, VmPlan, VmProblem};
