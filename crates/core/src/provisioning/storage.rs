//! The storage rental problem (paper Sec. V-A.1, Eqn. 6).
//!
//! Decide which NFS cluster stores each chunk so that aggregate retrieval
//! performance `Σ u_f Δ_i x_if` is maximized subject to one copy per
//! chunk, per-cluster capacity, and the hourly storage budget `B_S`. The
//! paper solves this Knapsack-like problem with a greedy heuristic —
//! hottest chunks onto the highest utility-per-dollar cluster — which we
//! implement alongside an exact enumerator used to measure the heuristic's
//! optimality gap.

use std::collections::BTreeMap;

use cloudmedia_cloud::cluster::{NfsClusterSpec, GIB};
use cloudmedia_cloud::scheduler::{ChunkKey, PlacementPlan};
use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, CoreError, ProblemKind};

/// Per-chunk cloud upload demand, the weight `Δ_i` in the objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkDemand {
    /// The chunk.
    pub key: ChunkKey,
    /// Cloud upload demand `Δ_i` for the chunk, bytes per second.
    pub demand: f64,
}

/// A solved storage rental plan.
#[derive(Debug, Clone, PartialEq)]
pub struct StoragePlan {
    /// Chunk → NFS cluster assignment.
    pub placement: PlacementPlan,
    /// Objective value `Σ u_f Δ_i x_if`.
    pub total_utility: f64,
    /// Hourly storage cost of the placement, dollars.
    pub hourly_cost: f64,
}

/// The storage rental problem instance.
#[derive(Debug, Clone)]
pub struct StorageProblem<'a> {
    /// Chunks to place with their demands.
    pub demands: &'a [ChunkDemand],
    /// Available NFS clusters.
    pub clusters: &'a [NfsClusterSpec],
    /// Uniform chunk size in bytes (`r · T0`).
    pub chunk_bytes: u64,
    /// Storage budget `B_S`, dollars per hour.
    pub budget_per_hour: f64,
}

impl StorageProblem<'_> {
    fn validate(&self) -> Result<(), CoreError> {
        if self.clusters.is_empty() {
            return Err(invalid_param(
                "clusters",
                "at least one NFS cluster required",
            ));
        }
        for c in self.clusters {
            c.validate()?;
        }
        if self.chunk_bytes == 0 {
            return Err(invalid_param("chunk_bytes", "must be positive"));
        }
        if !(self.budget_per_hour.is_finite() && self.budget_per_hour >= 0.0) {
            return Err(invalid_param(
                "budget_per_hour",
                format!("must be non-negative, got {}", self.budget_per_hour),
            ));
        }
        for d in self.demands {
            if !(d.demand.is_finite() && d.demand >= 0.0) {
                return Err(invalid_param(
                    "demands",
                    format!("chunk demand must be non-negative, got {}", d.demand),
                ));
            }
        }
        Ok(())
    }

    /// Per-chunk hourly cost on cluster `f`.
    fn chunk_cost(&self, f: usize) -> f64 {
        self.chunk_bytes as f64 / GIB * self.clusters[f].price_per_gb.dollars_per_hour
    }

    /// Per-cluster chunk capacity.
    fn capacity_chunks(&self, f: usize) -> usize {
        (self.clusters[f].capacity_bytes / self.chunk_bytes) as usize
    }

    /// Total capacity and minimum cost to place all chunks; used for the
    /// feasibility diagnostics the paper asks to surface.
    fn feasibility(&self) -> Result<f64, CoreError> {
        let total_capacity: usize = (0..self.clusters.len())
            .map(|f| self.capacity_chunks(f))
            .sum();
        if self.demands.len() > total_capacity {
            return Err(CoreError::CapacityExceeded {
                problem: ProblemKind::Storage,
                requested: self.demands.len() as f64,
                available: total_capacity as f64,
            });
        }
        // Cheapest assignment: fill lowest-price clusters first.
        let mut by_price: Vec<usize> = (0..self.clusters.len()).collect();
        by_price.sort_by(|&a, &b| {
            self.chunk_cost(a)
                .partial_cmp(&self.chunk_cost(b))
                .expect("prices are finite")
        });
        let mut remaining = self.demands.len();
        let mut min_cost = 0.0;
        for f in by_price {
            let take = remaining.min(self.capacity_chunks(f));
            min_cost += take as f64 * self.chunk_cost(f);
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
        Ok(min_cost)
    }

    /// The paper's greedy heuristic: chunks in decreasing demand order,
    /// clusters in decreasing utility-per-dollar order; each chunk goes to
    /// the best cluster with space, subject to the budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] (with the minimum budget that
    /// would fit) if the budget runs out before all chunks are placed, or
    /// [`CoreError::CapacityExceeded`] if the chunks cannot fit at all.
    pub fn greedy(&self) -> Result<StoragePlan, CoreError> {
        self.validate()?;
        let min_cost = self.feasibility()?;
        if min_cost > self.budget_per_hour + 1e-12 {
            return Err(CoreError::Infeasible {
                problem: ProblemKind::Storage,
                required_budget: min_cost,
                configured_budget: self.budget_per_hour,
            });
        }

        let mut chunk_order: Vec<usize> = (0..self.demands.len()).collect();
        chunk_order.sort_by(|&a, &b| {
            self.demands[b]
                .demand
                .partial_cmp(&self.demands[a].demand)
                .expect("demands are finite")
        });
        let mut cluster_order: Vec<usize> = (0..self.clusters.len()).collect();
        cluster_order.sort_by(|&a, &b| {
            self.clusters[b]
                .utility_per_dollar()
                .partial_cmp(&self.clusters[a].utility_per_dollar())
                .expect("utilities are finite")
        });

        let mut free: Vec<usize> = (0..self.clusters.len())
            .map(|f| self.capacity_chunks(f))
            .collect();
        let mut spent = 0.0;
        let mut placement = PlacementPlan::new();
        let mut total_utility = 0.0;
        for &ci in &chunk_order {
            let d = &self.demands[ci];
            let mut placed = false;
            for &f in &cluster_order {
                if free[f] == 0 {
                    continue;
                }
                let cost = self.chunk_cost(f);
                if spent + cost > self.budget_per_hour + 1e-12 {
                    // Budget cannot afford this cluster; try a cheaper one.
                    continue;
                }
                free[f] -= 1;
                spent += cost;
                total_utility += self.clusters[f].utility * d.demand;
                placement.insert(d.key, f);
                placed = true;
                break;
            }
            if !placed {
                return Err(CoreError::Infeasible {
                    problem: ProblemKind::Storage,
                    required_budget: min_cost.max(spent + self.cheapest_available_cost(&free)),
                    configured_budget: self.budget_per_hour,
                });
            }
        }
        Ok(StoragePlan {
            placement,
            total_utility,
            hourly_cost: spent,
        })
    }

    fn cheapest_available_cost(&self, free: &[usize]) -> f64 {
        free.iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(f, _)| self.chunk_cost(f))
            .fold(f64::INFINITY, f64::min)
    }

    /// Exact solver by enumerating per-cluster chunk counts (feasible for
    /// the paper's 2 NFS clusters and test-sized instances). For a fixed
    /// count vector, the best assignment puts the hottest chunks on the
    /// highest-utility clusters.
    ///
    /// # Errors
    ///
    /// Same feasibility behaviour as [`StorageProblem::greedy`].
    pub fn exact(&self) -> Result<StoragePlan, CoreError> {
        self.validate()?;
        let min_cost = self.feasibility()?;
        if min_cost > self.budget_per_hour + 1e-12 {
            return Err(CoreError::Infeasible {
                problem: ProblemKind::Storage,
                required_budget: min_cost,
                configured_budget: self.budget_per_hour,
            });
        }
        let n_chunks = self.demands.len();
        let n_clusters = self.clusters.len();
        // Chunks sorted hottest first; prefix sums of demand for O(1)
        // utility of "next k chunks onto cluster f".
        let mut chunk_order: Vec<usize> = (0..n_chunks).collect();
        chunk_order.sort_by(|&a, &b| {
            self.demands[b]
                .demand
                .partial_cmp(&self.demands[a].demand)
                .expect("demands are finite")
        });
        // Clusters sorted by utility descending: for fixed counts, optimal
        // assignment is hottest chunks -> highest utility.
        let mut util_order: Vec<usize> = (0..n_clusters).collect();
        util_order.sort_by(|&a, &b| {
            self.clusters[b]
                .utility
                .partial_cmp(&self.clusters[a].utility)
                .expect("utilities are finite")
        });

        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut counts = vec![0usize; n_clusters];
        self.enumerate_counts(
            &mut counts,
            0,
            n_chunks,
            &chunk_order,
            &util_order,
            &mut best,
        );
        let (_, counts) = best.ok_or(CoreError::Infeasible {
            problem: ProblemKind::Storage,
            required_budget: min_cost,
            configured_budget: self.budget_per_hour,
        })?;

        // Materialize the placement from the winning counts.
        let mut placement = PlacementPlan::new();
        let mut total_utility = 0.0;
        let mut cost = 0.0;
        let mut cursor = 0usize;
        for &f in &util_order {
            for _ in 0..counts[f] {
                let ci = chunk_order[cursor];
                cursor += 1;
                placement.insert(self.demands[ci].key, f);
                total_utility += self.clusters[f].utility * self.demands[ci].demand;
                cost += self.chunk_cost(f);
            }
        }
        Ok(StoragePlan {
            placement,
            total_utility,
            hourly_cost: cost,
        })
    }

    fn enumerate_counts(
        &self,
        counts: &mut Vec<usize>,
        cluster: usize,
        remaining: usize,
        chunk_order: &[usize],
        util_order: &[usize],
        best: &mut Option<(f64, Vec<usize>)>,
    ) {
        if cluster == self.clusters.len() {
            if remaining != 0 {
                return;
            }
            // Budget check.
            let cost: f64 = (0..counts.len())
                .map(|f| counts[f] as f64 * self.chunk_cost(f))
                .sum();
            if cost > self.budget_per_hour + 1e-12 {
                return;
            }
            // Utility: hottest chunks to highest-utility clusters.
            let mut utility = 0.0;
            let mut cursor = 0usize;
            for &f in util_order {
                for _ in 0..counts[f] {
                    utility += self.clusters[f].utility * self.demands[chunk_order[cursor]].demand;
                    cursor += 1;
                }
            }
            if best.as_ref().is_none_or(|(u, _)| utility > *u) {
                *best = Some((utility, counts.clone()));
            }
            return;
        }
        if cluster == self.clusters.len() - 1 {
            // Last cluster must absorb the remainder.
            if remaining <= self.capacity_chunks(cluster) {
                counts[cluster] = remaining;
                self.enumerate_counts(counts, cluster + 1, 0, chunk_order, util_order, best);
                counts[cluster] = 0;
            }
            return;
        }
        let cap = self.capacity_chunks(cluster).min(remaining);
        for take in 0..=cap {
            counts[cluster] = take;
            self.enumerate_counts(
                counts,
                cluster + 1,
                remaining - take,
                chunk_order,
                util_order,
                best,
            );
        }
        counts[cluster] = 0;
    }
}

/// Convenience: builds demands from parallel per-channel demand vectors.
pub fn demands_from_channels(per_channel: &[(usize, Vec<f64>)]) -> Vec<ChunkDemand> {
    let mut out = Vec::new();
    for (channel, demands) in per_channel {
        for (chunk, &demand) in demands.iter().enumerate() {
            out.push(ChunkDemand {
                key: ChunkKey {
                    channel: *channel,
                    chunk,
                },
                demand,
            });
        }
    }
    out
}

/// Computes the aggregate utility of an existing placement under new
/// demands (the paper's Fig. 8 metric, re-evaluated each hour).
pub fn placement_utility(
    placement: &PlacementPlan,
    clusters: &[NfsClusterSpec],
    demands: &BTreeMap<ChunkKey, f64>,
) -> f64 {
    placement
        .iter()
        .map(|(key, &f)| clusters[f].utility * demands.get(key).copied().unwrap_or(0.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmedia_cloud::cluster::paper_nfs_clusters;
    use cloudmedia_cloud::pricing::Rate;

    fn demands(values: &[f64]) -> Vec<ChunkDemand> {
        values
            .iter()
            .enumerate()
            .map(|(i, &demand)| ChunkDemand {
                key: ChunkKey {
                    channel: 0,
                    chunk: i,
                },
                demand,
            })
            .collect()
    }

    fn problem<'a>(
        d: &'a [ChunkDemand],
        c: &'a [NfsClusterSpec],
        budget: f64,
    ) -> StorageProblem<'a> {
        StorageProblem {
            demands: d,
            clusters: c,
            chunk_bytes: 15_000_000,
            budget_per_hour: budget,
        }
    }

    #[test]
    fn greedy_places_hottest_on_best_value_cluster() {
        let clusters = paper_nfs_clusters();
        let d = demands(&[10.0, 5.0, 1.0]);
        let plan = problem(&d, &clusters, 1.0).greedy().unwrap();
        // Standard (u/p = 0.8/1.11e-4) beats High (1.0/2.08e-4); greedy
        // sends everything to Standard while it has space.
        for i in 0..3 {
            assert_eq!(
                plan.placement[&ChunkKey {
                    channel: 0,
                    chunk: i
                }],
                0
            );
        }
        assert!((plan.total_utility - 0.8 * 16.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_overflows_to_second_cluster_when_full() {
        // Tiny clusters: capacity 2 chunks each.
        let clusters = vec![
            NfsClusterSpec {
                name: "A".into(),
                utility: 1.0,
                price_per_gb: Rate::per_hour(1e-4),
                capacity_bytes: 30_000_000,
            },
            NfsClusterSpec {
                name: "B".into(),
                utility: 0.5,
                price_per_gb: Rate::per_hour(1e-4),
                capacity_bytes: 30_000_000,
            },
        ];
        let d = demands(&[4.0, 3.0, 2.0, 1.0]);
        let plan = problem(&d, &clusters, 1.0).greedy().unwrap();
        // Hot chunks 0,1 on A; 2,3 spill to B.
        assert_eq!(
            plan.placement[&ChunkKey {
                channel: 0,
                chunk: 0
            }],
            0
        );
        assert_eq!(
            plan.placement[&ChunkKey {
                channel: 0,
                chunk: 1
            }],
            0
        );
        assert_eq!(
            plan.placement[&ChunkKey {
                channel: 0,
                chunk: 2
            }],
            1
        );
        assert_eq!(
            plan.placement[&ChunkKey {
                channel: 0,
                chunk: 3
            }],
            1
        );
        assert!((plan.total_utility - (7.0 + 1.5)).abs() < 1e-9);
    }

    #[test]
    fn infeasible_budget_reports_required() {
        let clusters = paper_nfs_clusters();
        let d = demands(&[1.0; 100]);
        let err = problem(&d, &clusters, 0.0).greedy().unwrap_err();
        match err {
            CoreError::Infeasible {
                problem: ProblemKind::Storage,
                required_budget,
                ..
            } => {
                // 100 chunks * 15 MB * 1.11e-4 / GB ~ 1.665e-4.
                assert!(required_budget > 0.0);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn capacity_exceeded_detected() {
        let clusters = vec![NfsClusterSpec {
            name: "tiny".into(),
            utility: 1.0,
            price_per_gb: Rate::per_hour(1e-4),
            capacity_bytes: 15_000_000, // one chunk
        }];
        let d = demands(&[1.0, 1.0]);
        assert!(matches!(
            problem(&d, &clusters, 100.0).greedy(),
            Err(CoreError::CapacityExceeded {
                problem: ProblemKind::Storage,
                ..
            })
        ));
    }

    #[test]
    fn exact_spends_loose_budget_on_utility() {
        // With an ample budget the exact optimizer puts everything on the
        // High cluster (utility 1.0); the paper's greedy stays on the
        // better-value Standard cluster (utility 0.8). Exact dominates.
        let clusters = paper_nfs_clusters();
        let d = demands(&[10.0, 5.0, 1.0]);
        let g = problem(&d, &clusters, 1.0).greedy().unwrap();
        let e = problem(&d, &clusters, 1.0).exact().unwrap();
        assert!(
            (e.total_utility - 1.0 * 16.0).abs() < 1e-9,
            "exact uses High"
        );
        assert!(
            (g.total_utility - 0.8 * 16.0).abs() < 1e-9,
            "greedy uses Standard"
        );
        assert!(e.total_utility > g.total_utility);
    }

    #[test]
    fn exact_beats_greedy_when_budget_forces_tradeoffs() {
        // High-utility cluster is expensive; budget fits only some chunks
        // there. Greedy by utility-per-dollar can misallocate; exact finds
        // the best split. Construct: cluster A u=1.0 p=10, cluster B u=0.9
        // p=1. u/p favours B strongly; with plenty of budget both work,
        // with tight budget exact may place the hottest on A if affordable.
        let clusters = vec![
            NfsClusterSpec {
                name: "A".into(),
                utility: 1.0,
                price_per_gb: Rate::per_hour(10.0),
                capacity_bytes: 150_000_000,
            },
            NfsClusterSpec {
                name: "B".into(),
                utility: 0.5,
                price_per_gb: Rate::per_hour(0.01),
                capacity_bytes: 15_000_000, // only one chunk fits
            },
        ];
        // Two chunks; B fits one, so one must go to A regardless.
        let d = demands(&[10.0, 1.0]);
        // Budget allows both on A? cost A per chunk = 0.015 GB * 10 = 0.15.
        // Budget 0.2: A+B = 0.15 + 0.00015 ok; A+A = 0.3 too dear.
        let g = problem(&d, &clusters, 0.2).greedy().unwrap();
        let e = problem(&d, &clusters, 0.2).exact().unwrap();
        // Optimal: hot chunk on A (u 1.0), cold on B: 10 + 0.5 = 10.5.
        assert!(
            (e.total_utility - 10.5).abs() < 1e-9,
            "exact utility {}",
            e.total_utility
        );
        assert!(e.total_utility >= g.total_utility - 1e-9);
    }

    #[test]
    fn exact_never_worse_than_greedy_randomized() {
        let clusters = paper_nfs_clusters();
        // Deterministic pseudo-random demands.
        let mut seed = 0xabcdef01u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 10.0
        };
        for trial in 0..20 {
            let vals: Vec<f64> = (0..12).map(|_| next()).collect();
            let d = demands(&vals);
            let budget = 0.001 + trial as f64 * 0.0005;
            let g = problem(&d, &clusters, budget).greedy();
            let e = problem(&d, &clusters, budget).exact();
            match (g, e) {
                (Ok(gp), Ok(ep)) => assert!(
                    ep.total_utility >= gp.total_utility - 1e-9,
                    "trial {trial}: exact {e} < greedy {g}",
                    e = ep.total_utility,
                    g = gp.total_utility
                ),
                (Err(_), Err(_)) => {}
                (g, e) => panic!("feasibility disagreement: greedy {g:?} exact {e:?}"),
            }
        }
    }

    #[test]
    fn plan_respects_budget_and_capacity() {
        let clusters = paper_nfs_clusters();
        let vals: Vec<f64> = (0..500).map(|i| (500 - i) as f64).collect();
        let d = demands(&vals);
        let budget = 0.002;
        let plan = problem(&d, &clusters, budget).greedy().unwrap();
        assert!(plan.hourly_cost <= budget + 1e-12);
        let mut counts = [0usize; 2];
        for &f in plan.placement.values() {
            counts[f] += 1;
        }
        assert!(counts[0] <= 1333);
        assert!(counts[1] <= 1333);
        assert_eq!(counts[0] + counts[1], 500);
    }

    #[test]
    fn placement_utility_reevaluates_under_new_demand() {
        let clusters = paper_nfs_clusters();
        let d = demands(&[10.0, 1.0]);
        let plan = problem(&d, &clusters, 1.0).greedy().unwrap();
        let mut new_demand = BTreeMap::new();
        new_demand.insert(
            ChunkKey {
                channel: 0,
                chunk: 0,
            },
            2.0,
        );
        new_demand.insert(
            ChunkKey {
                channel: 0,
                chunk: 1,
            },
            20.0,
        );
        let u = placement_utility(&plan.placement, &clusters, &new_demand);
        assert!((u - 0.8 * 22.0).abs() < 1e-9);
    }

    #[test]
    fn demands_from_channels_flattens() {
        let d = demands_from_channels(&[(0, vec![1.0, 2.0]), (3, vec![5.0])]);
        assert_eq!(d.len(), 3);
        assert_eq!(
            d[2].key,
            ChunkKey {
                channel: 3,
                chunk: 0
            }
        );
        assert_eq!(d[2].demand, 5.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let clusters = paper_nfs_clusters();
        let d = demands(&[-1.0]);
        assert!(problem(&d, &clusters, 1.0).greedy().is_err());
        let d = demands(&[1.0]);
        let mut p = problem(&d, &clusters, 1.0);
        p.chunk_bytes = 0;
        assert!(p.greedy().is_err());
        let p = problem(&d, &[], 1.0);
        assert!(p.greedy().is_err());
    }
}
