//! The VM configuration problem (paper Sec. V-A.2, Eqn. 7).
//!
//! Decide how many VMs to rent from each virtual cluster so that every
//! chunk's cloud demand `Δ_i` is covered (`Σ_v z_iv = Δ_i / R`), maximizing
//! aggregate VM performance `Σ u~_v z_iv` subject to per-cluster fleet
//! sizes `N_v` and the hourly rental budget `B_M`. Allocations `z_iv` may
//! be fractional — a shared VM serves several (preferably consecutive)
//! chunks. The paper's greedy heuristic fills from the best
//! utility-per-dollar cluster; an exact LP vertex enumerator measures its
//! optimality gap.

use std::collections::BTreeMap;

use cloudmedia_cloud::cluster::VirtualClusterSpec;
use cloudmedia_cloud::scheduler::ChunkKey;
use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, CoreError, ProblemKind};
use crate::provisioning::storage::ChunkDemand;

/// A fractional VM allocation for one chunk on one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkAllocation {
    /// Target virtual cluster.
    pub cluster: usize,
    /// Fraction of VMs allocated (`z_iv`), possibly fractional.
    pub vms: f64,
}

/// A solved VM configuration plan.
#[derive(Debug, Clone, PartialEq)]
pub struct VmPlan {
    /// Per-chunk allocations across clusters.
    pub allocations: BTreeMap<ChunkKey, Vec<ChunkAllocation>>,
    /// Total (fractional) VMs requested per cluster, `y_v = Σ_i z_iv`.
    pub vm_fractions: Vec<f64>,
    /// Integer VM targets per cluster (ceiling of the fractional totals:
    /// a partially used VM is still rented whole).
    pub vm_targets: Vec<usize>,
    /// Objective value `Σ u~_v z_iv`.
    pub total_utility: f64,
    /// Hourly rental cost of the fractional allocation, dollars.
    pub fractional_hourly_cost: f64,
    /// Hourly rental cost of the integer targets, dollars (what billing
    /// actually charges).
    pub integer_hourly_cost: f64,
}

impl VmPlan {
    /// Total VMs (fractional) across clusters.
    pub fn total_vms(&self) -> f64 {
        self.vm_fractions.iter().sum()
    }

    /// Total bandwidth reserved by the integer targets, bytes/s, given the
    /// per-cluster VM bandwidth.
    pub fn reserved_bandwidth(&self, clusters: &[VirtualClusterSpec]) -> f64 {
        self.vm_targets
            .iter()
            .zip(clusters)
            .map(|(&n, c)| n as f64 * c.vm_bandwidth_bytes_per_sec)
            .sum()
    }
}

/// The VM configuration problem instance.
#[derive(Debug, Clone)]
pub struct VmProblem<'a> {
    /// Chunks with their cloud demands `Δ_i` (bytes per second).
    pub demands: &'a [ChunkDemand],
    /// Available virtual clusters. All must share the same per-VM
    /// bandwidth `R` (the paper's assumption).
    pub clusters: &'a [VirtualClusterSpec],
    /// VM rental budget `B_M`, dollars per hour.
    pub budget_per_hour: f64,
}

impl VmProblem<'_> {
    fn validate(&self) -> Result<f64, CoreError> {
        if self.clusters.is_empty() {
            return Err(invalid_param(
                "clusters",
                "at least one virtual cluster required",
            ));
        }
        for c in self.clusters {
            c.validate()?;
        }
        let r = self.clusters[0].vm_bandwidth_bytes_per_sec;
        if self
            .clusters
            .iter()
            .any(|c| (c.vm_bandwidth_bytes_per_sec - r).abs() > 1e-9)
        {
            return Err(invalid_param(
                "clusters",
                "all clusters must share the same per-VM bandwidth R (paper assumption)",
            ));
        }
        if !(self.budget_per_hour.is_finite() && self.budget_per_hour >= 0.0) {
            return Err(invalid_param(
                "budget_per_hour",
                format!("must be non-negative, got {}", self.budget_per_hour),
            ));
        }
        for d in self.demands {
            if !(d.demand.is_finite() && d.demand >= 0.0) {
                return Err(invalid_param(
                    "demands",
                    format!("chunk demand must be non-negative, got {}", d.demand),
                ));
            }
        }
        Ok(r)
    }

    /// Total VMs demanded, `D = Σ_i Δ_i / R`.
    fn total_vm_demand(&self, r: f64) -> f64 {
        self.demands.iter().map(|d| d.demand / r).sum()
    }

    /// Minimum hourly cost to serve `total` VMs: fill cheapest first.
    fn min_cost(&self, total: f64) -> f64 {
        let mut by_price: Vec<usize> = (0..self.clusters.len()).collect();
        by_price.sort_by(|&a, &b| {
            self.clusters[a]
                .price
                .dollars_per_hour
                .partial_cmp(&self.clusters[b].price.dollars_per_hour)
                .expect("prices are finite")
        });
        let mut remaining = total;
        let mut cost = 0.0;
        for v in by_price {
            let take = remaining.min(self.clusters[v].max_vms as f64);
            cost += take * self.clusters[v].price.dollars_per_hour;
            remaining -= take;
            if remaining <= 1e-12 {
                break;
            }
        }
        cost
    }

    fn check_feasible(&self, r: f64) -> Result<(), CoreError> {
        let demand = self.total_vm_demand(r);
        let capacity: f64 = self.clusters.iter().map(|c| c.max_vms as f64).sum();
        if demand > capacity + 1e-9 {
            return Err(CoreError::CapacityExceeded {
                problem: ProblemKind::VmConfiguration,
                requested: demand,
                available: capacity,
            });
        }
        let min_cost = self.min_cost(demand);
        if min_cost > self.budget_per_hour + 1e-9 {
            return Err(CoreError::Infeasible {
                problem: ProblemKind::VmConfiguration,
                required_budget: min_cost,
                configured_budget: self.budget_per_hour,
            });
        }
        Ok(())
    }

    /// The paper's greedy heuristic: clusters sorted by utility per dollar
    /// (`u~_v / p~_v`); each chunk draws as many VMs as possible from the
    /// best cluster with spare instances, then the next, while the budget
    /// lasts.
    ///
    /// # Errors
    ///
    /// [`CoreError::Infeasible`] when even the cheapest assignment exceeds
    /// the budget (with the required budget, as the paper's feedback
    /// signal); [`CoreError::CapacityExceeded`] when demand exceeds the
    /// fleet.
    pub fn greedy(&self) -> Result<VmPlan, CoreError> {
        let r = self.validate()?;
        self.check_feasible(r)?;
        let mut order: Vec<usize> = (0..self.clusters.len()).collect();
        order.sort_by(|&a, &b| {
            self.clusters[b]
                .utility_per_dollar()
                .partial_cmp(&self.clusters[a].utility_per_dollar())
                .expect("utilities are finite")
        });

        // Chunks in decreasing demand order for determinism (the paper
        // leaves chunk order unspecified).
        let mut chunk_order: Vec<usize> = (0..self.demands.len()).collect();
        chunk_order.sort_by(|&a, &b| {
            self.demands[b]
                .demand
                .partial_cmp(&self.demands[a].demand)
                .expect("demands are finite")
        });

        let mut free: Vec<f64> = self.clusters.iter().map(|c| c.max_vms as f64).collect();
        let mut budget = self.budget_per_hour;
        let mut allocations: BTreeMap<ChunkKey, Vec<ChunkAllocation>> = BTreeMap::new();
        let mut fractions = vec![0.0; self.clusters.len()];
        let mut utility = 0.0;
        let mut cost = 0.0;

        for &ci in &chunk_order {
            let d = &self.demands[ci];
            let mut need = d.demand / r;
            if need <= 0.0 {
                continue;
            }
            let entry = allocations.entry(d.key).or_default();
            // Pass 1: best utility-per-dollar clusters while budget allows.
            for &v in &order {
                if need <= 1e-12 {
                    break;
                }
                let price = self.clusters[v].price.dollars_per_hour;
                let affordable = if price > 0.0 {
                    budget / price
                } else {
                    f64::INFINITY
                };
                let take = need.min(free[v]).min(affordable);
                if take <= 1e-12 {
                    continue;
                }
                free[v] -= take;
                budget -= take * price;
                need -= take;
                fractions[v] += take;
                utility += self.clusters[v].utility * take;
                cost += take * price;
                entry.push(ChunkAllocation {
                    cluster: v,
                    vms: take,
                });
            }
            if need > 1e-9 {
                // Budget blocked the preferred clusters; feasibility check
                // guaranteed a cheaper assignment exists overall, but the
                // greedy order spent it. Retry cheapest-first for the rest.
                let mut by_price: Vec<usize> = (0..self.clusters.len()).collect();
                by_price.sort_by(|&a, &b| {
                    self.clusters[a]
                        .price
                        .dollars_per_hour
                        .partial_cmp(&self.clusters[b].price.dollars_per_hour)
                        .expect("prices are finite")
                });
                for &v in &by_price {
                    if need <= 1e-12 {
                        break;
                    }
                    let price = self.clusters[v].price.dollars_per_hour;
                    let affordable = if price > 0.0 {
                        budget / price
                    } else {
                        f64::INFINITY
                    };
                    let take = need.min(free[v]).min(affordable);
                    if take <= 1e-12 {
                        continue;
                    }
                    free[v] -= take;
                    budget -= take * price;
                    need -= take;
                    fractions[v] += take;
                    utility += self.clusters[v].utility * take;
                    cost += take * price;
                    entry.push(ChunkAllocation {
                        cluster: v,
                        vms: take,
                    });
                }
            }
            if need > 1e-9 {
                return Err(CoreError::Infeasible {
                    problem: ProblemKind::VmConfiguration,
                    required_budget: self.min_cost(self.total_vm_demand(r)),
                    configured_budget: self.budget_per_hour,
                });
            }
        }

        let vm_targets: Vec<usize> = fractions
            .iter()
            .zip(self.clusters)
            .map(|(&f, c)| ((f - 1e-9).max(0.0).ceil() as usize).min(c.max_vms))
            .collect();
        let integer_cost: f64 = vm_targets
            .iter()
            .zip(self.clusters)
            .map(|(&n, c)| n as f64 * c.price.dollars_per_hour)
            .sum();
        Ok(VmPlan {
            allocations,
            vm_fractions: fractions,
            vm_targets,
            total_utility: utility,
            fractional_hourly_cost: cost,
            integer_hourly_cost: integer_cost,
        })
    }

    /// Exact solution of the aggregated LP
    /// `max Σ u~_v y_v  s.t.  Σ y_v = D, 0 ≤ y_v ≤ N_v, Σ p~_v y_v ≤ B`
    /// by vertex enumeration (each variable pinned to a bound or free; at
    /// most two free variables are determined by the two tight
    /// constraints). The per-chunk split is then hottest-chunk-first onto
    /// the highest-utility clusters, which preserves the aggregate
    /// objective (it only depends on the per-cluster totals).
    ///
    /// # Errors
    ///
    /// Same feasibility behaviour as [`VmProblem::greedy`].
    pub fn exact(&self) -> Result<VmPlan, CoreError> {
        let r = self.validate()?;
        self.check_feasible(r)?;
        let n = self.clusters.len();
        let total = self.total_vm_demand(r);
        let prices: Vec<f64> = self
            .clusters
            .iter()
            .map(|c| c.price.dollars_per_hour)
            .collect();
        let utils: Vec<f64> = self.clusters.iter().map(|c| c.utility).collect();
        let caps: Vec<f64> = self.clusters.iter().map(|c| c.max_vms as f64).collect();

        let mut best: Option<(f64, Vec<f64>)> = None;
        // Enumerate bound assignments: 0 = at zero, 1 = at cap, 2 = free.
        let mut assign = vec![0u8; n];
        enumerate_assignments(&mut assign, 0, &mut |assign| {
            let free: Vec<usize> = (0..n).filter(|&i| assign[i] == 2).collect();
            if free.len() > 2 {
                return;
            }
            let mut y: Vec<f64> = (0..n)
                .map(|i| match assign[i] {
                    0 => 0.0,
                    1 => caps[i],
                    _ => 0.0,
                })
                .collect();
            let fixed_sum: f64 = (0..n).filter(|&i| assign[i] != 2).map(|i| y[i]).sum();
            let need = total - fixed_sum;
            match free.len() {
                0 => {
                    if need.abs() > 1e-9 {
                        return;
                    }
                }
                1 => {
                    let i = free[0];
                    if need < -1e-9 || need > caps[i] + 1e-9 {
                        return;
                    }
                    y[i] = need.clamp(0.0, caps[i]);
                }
                2 => {
                    // Two free vars: sum constraint + tight budget.
                    let (i, j) = (free[0], free[1]);
                    let fixed_cost: f64 = (0..n)
                        .filter(|&k| assign[k] != 2)
                        .map(|k| y[k] * prices[k])
                        .sum();
                    let budget_left = self.budget_per_hour - fixed_cost;
                    // y_i + y_j = need; p_i y_i + p_j y_j = budget_left.
                    let det = prices[i] - prices[j];
                    if det.abs() < 1e-12 {
                        return; // degenerate; covered by 1-free cases
                    }
                    let yi = (budget_left - prices[j] * need) / det;
                    let yj = need - yi;
                    if yi < -1e-9 || yi > caps[i] + 1e-9 || yj < -1e-9 || yj > caps[j] + 1e-9 {
                        return;
                    }
                    y[i] = yi.clamp(0.0, caps[i]);
                    y[j] = yj.clamp(0.0, caps[j]);
                }
                _ => unreachable!(),
            }
            // Check both constraints.
            let cost: f64 = (0..n).map(|k| y[k] * prices[k]).sum();
            if cost > self.budget_per_hour + 1e-6 {
                return;
            }
            let sum: f64 = y.iter().sum();
            if (sum - total).abs() > 1e-6 {
                return;
            }
            let value: f64 = (0..n).map(|k| y[k] * utils[k]).sum();
            if best.as_ref().is_none_or(|(b, _)| value > *b) {
                best = Some((value, y.to_vec()));
            }
        });

        let (utility, y) = best.ok_or(CoreError::Infeasible {
            problem: ProblemKind::VmConfiguration,
            required_budget: self.min_cost(total),
            configured_budget: self.budget_per_hour,
        })?;

        // Split per-cluster totals across chunks: hottest chunks onto the
        // highest-utility clusters (cosmetic for the aggregate objective).
        let mut chunk_order: Vec<usize> = (0..self.demands.len()).collect();
        chunk_order.sort_by(|&a, &b| {
            self.demands[b]
                .demand
                .partial_cmp(&self.demands[a].demand)
                .expect("demands are finite")
        });
        let mut util_order: Vec<usize> = (0..n).collect();
        util_order.sort_by(|&a, &b| utils[b].partial_cmp(&utils[a]).expect("finite"));
        let mut remaining = y.clone();
        let mut allocations: BTreeMap<ChunkKey, Vec<ChunkAllocation>> = BTreeMap::new();
        let mut cursor = 0usize;
        for &ci in &chunk_order {
            let d = &self.demands[ci];
            let mut need = d.demand / r;
            let entry = allocations.entry(d.key).or_default();
            while need > 1e-12 && cursor < n {
                let v = util_order[cursor];
                let take = need.min(remaining[v]);
                if take > 1e-12 {
                    remaining[v] -= take;
                    need -= take;
                    entry.push(ChunkAllocation {
                        cluster: v,
                        vms: take,
                    });
                }
                if remaining[v] <= 1e-12 {
                    cursor += 1;
                } else {
                    break;
                }
            }
        }

        let vm_targets: Vec<usize> = y
            .iter()
            .zip(self.clusters)
            .map(|(&f, c)| ((f - 1e-9).max(0.0).ceil() as usize).min(c.max_vms))
            .collect();
        let integer_cost: f64 = vm_targets
            .iter()
            .zip(&prices)
            .map(|(&count, &p)| count as f64 * p)
            .sum();
        let fractional_cost: f64 = y.iter().zip(&prices).map(|(&f, &p)| f * p).sum();
        Ok(VmPlan {
            allocations,
            vm_fractions: y,
            vm_targets,
            total_utility: utility,
            fractional_hourly_cost: fractional_cost,
            integer_hourly_cost: integer_cost,
        })
    }
}

fn enumerate_assignments(assign: &mut Vec<u8>, idx: usize, f: &mut impl FnMut(&[u8])) {
    if idx == assign.len() {
        f(assign);
        return;
    }
    for v in 0..3u8 {
        assign[idx] = v;
        enumerate_assignments(assign, idx + 1, f);
    }
    assign[idx] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmedia_cloud::cluster::{paper_virtual_clusters, PAPER_VM_BANDWIDTH};

    fn demands(values: &[f64]) -> Vec<ChunkDemand> {
        values
            .iter()
            .enumerate()
            .map(|(i, &demand)| ChunkDemand {
                key: ChunkKey {
                    channel: 0,
                    chunk: i,
                },
                demand,
            })
            .collect()
    }

    fn problem<'a>(
        d: &'a [ChunkDemand],
        c: &'a [VirtualClusterSpec],
        budget: f64,
    ) -> VmProblem<'a> {
        VmProblem {
            demands: d,
            clusters: c,
            budget_per_hour: budget,
        }
    }

    #[test]
    fn greedy_covers_every_chunk_demand() {
        let clusters = paper_virtual_clusters();
        let d = demands(&[5e6, 2.5e6, 1.25e6]); // 4 + 2 + 1 VMs
        let plan = problem(&d, &clusters, 100.0).greedy().unwrap();
        assert!((plan.total_vms() - 7.0).abs() < 1e-9);
        for dd in &d {
            let got: f64 = plan.allocations[&dd.key].iter().map(|a| a.vms).sum();
            assert!(
                (got - dd.demand / PAPER_VM_BANDWIDTH).abs() < 1e-9,
                "chunk {:?}: {got}",
                dd.key
            );
        }
    }

    #[test]
    fn greedy_prefers_best_utility_per_dollar() {
        // Standard has the best u/p; small demand fits entirely there.
        let clusters = paper_virtual_clusters();
        let d = demands(&[12.5e6]); // 10 VMs
        let plan = problem(&d, &clusters, 100.0).greedy().unwrap();
        assert!(
            (plan.vm_fractions[0] - 10.0).abs() < 1e-9,
            "all on Standard"
        );
        assert_eq!(plan.vm_targets, vec![10, 0, 0]);
        assert!((plan.integer_hourly_cost - 4.5).abs() < 1e-9);
    }

    #[test]
    fn greedy_overflows_to_next_cluster() {
        let clusters = paper_virtual_clusters();
        // 100 VMs: 75 Standard + 25 on next-best u/p (Advanced at 1.25).
        let d = demands(&[125e6]);
        let plan = problem(&d, &clusters, 100.0).greedy().unwrap();
        assert!((plan.vm_fractions[0] - 75.0).abs() < 1e-9);
        assert!((plan.vm_fractions[2] - 25.0).abs() < 1e-9);
        assert_eq!(plan.vm_fractions[1], 0.0);
    }

    #[test]
    fn fractional_allocations_ceil_to_targets() {
        let clusters = paper_virtual_clusters();
        let d = demands(&[1.9e6]); // 1.52 VMs
        let plan = problem(&d, &clusters, 100.0).greedy().unwrap();
        assert_eq!(plan.vm_targets[0], 2);
        assert!(plan.fractional_hourly_cost < plan.integer_hourly_cost);
    }

    #[test]
    fn capacity_exceeded_detected() {
        let clusters = paper_virtual_clusters();
        // 151 VMs > 150 fleet.
        let d = demands(&[151.0 * PAPER_VM_BANDWIDTH]);
        assert!(matches!(
            problem(&d, &clusters, 1e9).greedy(),
            Err(CoreError::CapacityExceeded {
                problem: ProblemKind::VmConfiguration,
                ..
            })
        ));
    }

    #[test]
    fn infeasible_budget_reports_required() {
        let clusters = paper_virtual_clusters();
        let d = demands(&[100.0 * PAPER_VM_BANDWIDTH]);
        let err = problem(&d, &clusters, 10.0).greedy().unwrap_err();
        match err {
            CoreError::Infeasible {
                required_budget,
                configured_budget,
                ..
            } => {
                // Cheapest 100 VMs: 75x$0.45 + 25x$0.70 = $51.25.
                assert!(
                    (required_budget - 51.25).abs() < 1e-6,
                    "required {required_budget}"
                );
                assert_eq!(configured_budget, 10.0);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn tight_budget_forces_cheap_clusters() {
        let clusters = paper_virtual_clusters();
        // 80 VMs; budget $40: cheapest is 75 Std ($33.75) + 5 Med ($3.5) =
        // $37.25. Advanced (u/p favoured over Medium) at $0.80 would cost
        // 75*0.45 + 5*0.8 = $37.75 — also feasible. Greedy: Std then Adv.
        let d = demands(&[80.0 * PAPER_VM_BANDWIDTH]);
        let plan = problem(&d, &clusters, 40.0).greedy().unwrap();
        assert!((plan.total_vms() - 80.0).abs() < 1e-9);
        assert!(plan.fractional_hourly_cost <= 40.0 + 1e-9);
    }

    #[test]
    fn exact_dominates_greedy_with_loose_budget() {
        // With budget to spare, exact rents the Advanced cluster
        // (utility 1.0); greedy sticks to Standard (best u/p, utility 0.6).
        let clusters = paper_virtual_clusters();
        let d = demands(&[5e6, 2.5e6]); // 6 VMs
        let g = problem(&d, &clusters, 100.0).greedy().unwrap();
        let e = problem(&d, &clusters, 100.0).exact().unwrap();
        assert!(
            (e.total_utility - 6.0).abs() < 1e-6,
            "exact all-Advanced: {}",
            e.total_utility
        );
        assert!(
            (g.total_utility - 3.6).abs() < 1e-6,
            "greedy all-Standard: {}",
            g.total_utility
        );
    }

    #[test]
    fn exact_never_worse_than_greedy_randomized() {
        let clusters = paper_virtual_clusters();
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 100) as f64
        };
        for trial in 0..30 {
            let vals: Vec<f64> = (0..8).map(|_| next() * PAPER_VM_BANDWIDTH / 10.0).collect();
            let d = demands(&vals);
            let budget = 20.0 + trial as f64 * 2.0;
            match (
                problem(&d, &clusters, budget).greedy(),
                problem(&d, &clusters, budget).exact(),
            ) {
                (Ok(g), Ok(e)) => assert!(
                    e.total_utility >= g.total_utility - 1e-6,
                    "trial {trial}: exact {eu} < greedy {gu}",
                    eu = e.total_utility,
                    gu = g.total_utility
                ),
                (Err(_), Err(_)) => {}
                (g, e) => panic!("feasibility disagreement: {g:?} vs {e:?}"),
            }
        }
    }

    #[test]
    fn exact_respects_budget_and_demand() {
        let clusters = paper_virtual_clusters();
        let d = demands(&[60.0 * PAPER_VM_BANDWIDTH]);
        let e = problem(&d, &clusters, 30.0).exact().unwrap();
        assert!((e.total_vms() - 60.0).abs() < 1e-6);
        assert!(e.fractional_hourly_cost <= 30.0 + 1e-6);
    }

    #[test]
    fn mismatched_vm_bandwidth_rejected() {
        let mut clusters = paper_virtual_clusters();
        clusters[1].vm_bandwidth_bytes_per_sec *= 2.0;
        let d = demands(&[1e6]);
        assert!(problem(&d, &clusters, 100.0).greedy().is_err());
    }

    #[test]
    fn zero_demand_needs_zero_vms() {
        let clusters = paper_virtual_clusters();
        let d = demands(&[0.0, 0.0]);
        let plan = problem(&d, &clusters, 100.0).greedy().unwrap();
        assert_eq!(plan.total_vms(), 0.0);
        assert_eq!(plan.vm_targets, vec![0, 0, 0]);
        assert_eq!(plan.integer_hourly_cost, 0.0);
    }

    #[test]
    fn reserved_bandwidth_uses_integer_targets() {
        let clusters = paper_virtual_clusters();
        let d = demands(&[1.9e6]);
        let plan = problem(&d, &clusters, 100.0).greedy().unwrap();
        assert!((plan.reserved_bandwidth(&clusters) - 2.0 * PAPER_VM_BANDWIDTH).abs() < 1e-6);
    }
}
