//! Federated multi-region placement — the overflow-redirection middle
//! ground between fully independent regional sites and one centralized
//! site.
//!
//! The paper's future work ("expanding to cloud systems spanning
//! different geographic locations") is modeled in two deployment
//! extremes by [`crate::geo`]: independent per-region sites (every byte
//! served locally) and a single central site (time-zone multiplexing,
//! every remote viewer pays latency). This module adds the federation in
//! between: regions keep their own cloud sites, but every provisioning
//! interval a **global placement optimizer** decides how much of each
//! region's predicted demand is served locally and how much is
//! *redirected* to remote sites — because the local site's capacity cap
//! overflowed, or simply because an off-peak remote site sells the same
//! VM-hour cheaper than the local peak-priced one, even after paying for
//! the inter-region transfer and the SLA latency penalty.
//!
//! The optimizer is a greedy water-filling over marginal cost. For
//! region `i`, serving one byte/s for an hour costs:
//!
//! - locally: `price_i` (the site's bandwidth price),
//! - at remote site `j`: `price_j + egress_j + penalty`, where `egress_j`
//!   is site `j`'s per-volume transfer price expressed per sustained
//!   bandwidth-hour and `penalty` prices the extra delivery latency a
//!   redirected viewer experiences (an SLA credit, in dollars per GB).
//!
//! Demand is assigned to sites in ascending marginal-cost order,
//! respecting each site's residual capacity cap; when every candidate is
//! exhausted the remainder falls back to the local site regardless of its
//! cap (caps are *planning* limits — the local site is always the server
//! of last resort, it just stops being cheap). Redirection away from an
//! uncapped local site additionally requires the remote marginal cost to
//! undercut the local one by the policy's hysteresis margin, so tiny
//! price differences do not thrash traffic across the planet.

use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, CoreError};

/// Economic description of one region's cloud site, the per-region terms
/// the federation optimizer prices placements with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Multiplier on the reference price book's VM rental prices
    /// (1.0 = reference region).
    pub vm_price_factor: f64,
    /// Cap on the cloud bandwidth this site can sell, bytes per second
    /// (`f64::INFINITY` = uncapped). A *planning* limit: demand beyond
    /// every cap still lands on the local site.
    pub capacity_cap_bps: f64,
    /// Price of egress traffic this site charges for serving a remote
    /// region, dollars per decimal gigabyte.
    pub egress_price_per_gb: f64,
}

impl SiteSpec {
    /// An uncapped reference-priced site with the given egress price.
    pub fn reference(egress_price_per_gb: f64) -> Self {
        Self {
            vm_price_factor: 1.0,
            capacity_cap_bps: f64::INFINITY,
            egress_price_per_gb,
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        if !(self.vm_price_factor.is_finite() && self.vm_price_factor > 0.0) {
            return Err(invalid_param("vm_price_factor", "must be positive"));
        }
        // NaN caps fail here too (the comparison is false for NaN).
        if self.capacity_cap_bps <= 0.0 || self.capacity_cap_bps.is_nan() {
            return Err(invalid_param("capacity_cap_bps", "must be positive"));
        }
        if !(self.egress_price_per_gb.is_finite() && self.egress_price_per_gb >= 0.0) {
            return Err(invalid_param("egress_price_per_gb", "must be non-negative"));
        }
        Ok(())
    }
}

/// The three-site economics matching [`crate::geo::three_sites`]:
/// Americas is the reference market, Europe and Asia-Pacific rent the
/// same VM classes at a premium, and every site charges $0.01/GB egress.
/// Caps sit well above each region's diurnal mean so only flash-crowd
/// peaks overflow.
pub fn paper_sites() -> Vec<SiteSpec> {
    vec![
        SiteSpec {
            vm_price_factor: 1.0,
            capacity_cap_bps: 80e6,
            egress_price_per_gb: 0.01,
        },
        SiteSpec {
            vm_price_factor: 1.15,
            capacity_cap_bps: 70e6,
            egress_price_per_gb: 0.01,
        },
        SiteSpec {
            vm_price_factor: 1.30,
            capacity_cap_bps: 60e6,
            egress_price_per_gb: 0.01,
        },
    ]
}

/// Knobs of the global placement optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FederationPolicy {
    /// Master switch: disabled means every region serves all of its own
    /// demand locally (the independent-geo deployment, but run through
    /// the same machinery so the comparison is apples-to-apples).
    pub enabled: bool,
    /// SLA latency penalty priced onto every redirected gigabyte,
    /// dollars per decimal GB. Models the credit a provider owes viewers
    /// it serves from a remote region.
    pub latency_penalty_per_gb: f64,
    /// Hysteresis: voluntary (non-overflow) redirection requires the
    /// remote marginal cost to be below `local × (1 − margin)`. Protects
    /// the integer VM plan from thrashing on sub-percent price noise.
    pub redirect_margin: f64,
}

impl FederationPolicy {
    /// Redirection enabled with the default penalty ($0.005/GB) and a 5 %
    /// hysteresis margin.
    pub fn federated() -> Self {
        Self {
            enabled: true,
            latency_penalty_per_gb: 0.005,
            redirect_margin: 0.05,
        }
    }

    /// Redirection disabled: the independent-geo deployment.
    pub fn independent() -> Self {
        Self {
            enabled: false,
            latency_penalty_per_gb: 0.0,
            redirect_margin: 0.0,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Rejects negative penalties and margins outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.latency_penalty_per_gb.is_finite() && self.latency_penalty_per_gb >= 0.0) {
            return Err(invalid_param(
                "latency_penalty_per_gb",
                "must be non-negative",
            ));
        }
        if !(self.redirect_margin >= 0.0 && self.redirect_margin < 1.0) {
            return Err(invalid_param("redirect_margin", "must be in [0, 1)"));
        }
        Ok(())
    }
}

impl Default for FederationPolicy {
    fn default() -> Self {
        Self::independent()
    }
}

/// The placement the optimizer decided for one provisioning interval.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalPlacement {
    /// `assignment[i][j]` = bytes/s of region `i`'s cloud demand served
    /// by site `j`. Row sums equal the input demands.
    pub assignment: Vec<Vec<f64>>,
    /// Total demand redirected away from its home region, bytes/s.
    pub redirected_bps: f64,
    /// Estimated total marginal cost of the placement, dollars per hour
    /// (fluid estimate — the integer VM plan and per-byte metering refine
    /// it during simulation).
    pub estimated_hourly_cost: f64,
}

impl GlobalPlacement {
    /// Fraction of region `i`'s demand served away from home (0 when the
    /// region has no demand).
    pub fn redirect_fraction(&self, i: usize) -> f64 {
        let row = &self.assignment[i];
        let total: f64 = row.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        (total - row[i]) / total
    }

    /// Fraction of global demand served away from home.
    pub fn redirected_share(&self) -> f64 {
        let total: f64 = self.assignment.iter().flatten().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.redirected_bps / total
    }

    /// Total demand assigned to site `j` (its serving load), bytes/s.
    pub fn site_load(&self, j: usize) -> f64 {
        self.assignment.iter().map(|row| row[j]).sum()
    }
}

/// Plans one interval's global placement: assigns each region's predicted
/// cloud demand (`demands[i]`, bytes/s) to sites by greedy water-filling
/// over marginal cost. `local_prices[j]` is site `j`'s *own published*
/// price of one byte/s for one hour (see
/// `SlaTerms::bandwidth_price_per_bps_hour` in `cloudmedia-cloud`, taken
/// from each site's SLA) — passing each site's price directly means no
/// assumption about which region is the reference market or how the
/// caller ordered them.
///
/// # Errors
///
/// Rejects mismatched lengths, invalid sites/policy/prices, and
/// non-finite or negative demands.
pub fn plan_global_placement(
    demands: &[f64],
    sites: &[SiteSpec],
    local_prices: &[f64],
    policy: &FederationPolicy,
) -> Result<GlobalPlacement, CoreError> {
    if demands.len() != sites.len() || local_prices.len() != sites.len() || sites.is_empty() {
        return Err(invalid_param(
            "demands",
            format!(
                "expected one demand and one price per site, got {} demands / {} prices / {} sites",
                demands.len(),
                local_prices.len(),
                sites.len()
            ),
        ));
    }
    for s in sites {
        s.validate()?;
    }
    policy.validate()?;
    for (j, p) in local_prices.iter().enumerate() {
        if !(p.is_finite() && *p > 0.0) {
            return Err(invalid_param(
                "local_prices",
                format!("price[{j}] must be positive, got {p}"),
            ));
        }
    }
    for (i, d) in demands.iter().enumerate() {
        if !(d.is_finite() && *d >= 0.0) {
            return Err(invalid_param(
                "demands",
                format!("demand[{i}] must be finite and non-negative, got {d}"),
            ));
        }
    }

    let n = sites.len();
    let local_price = local_prices;
    let penalty_bps_hour = policy.latency_penalty_per_gb * 3600.0 / 1e9;
    // Marginal cost of serving region i's demand at site j, $/bps·h.
    let marginal = |i: usize, j: usize| -> f64 {
        if i == j {
            local_price[j]
        } else {
            local_price[j] + sites[j].egress_price_per_gb * 3600.0 / 1e9 + penalty_bps_hour
        }
    };

    let mut residual: Vec<f64> = sites.iter().map(|s| s.capacity_cap_bps).collect();
    let mut assignment = vec![vec![0.0; n]; n];
    let mut redirected = 0.0;
    let mut cost = 0.0;

    if !policy.enabled {
        for (i, &d) in demands.iter().enumerate() {
            assignment[i][i] = d;
            cost += d * local_price[i];
        }
        return Ok(GlobalPlacement {
            assignment,
            redirected_bps: 0.0,
            estimated_hourly_cost: cost,
        });
    }

    // Regions place in descending demand order: the heaviest (peak)
    // region gets first pick of the cheap off-peak capacity, which is the
    // assignment a global optimizer would also prefer (the heaviest
    // region has the most to gain per unit moved).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        demands[b]
            .partial_cmp(&demands[a])
            .expect("demands are finite")
            .then(a.cmp(&b))
    });

    for &i in &order {
        let mut remaining = demands[i];
        if remaining <= 0.0 {
            continue;
        }
        // Candidate sites in ascending marginal cost (stable on ties so
        // the placement is deterministic).
        let mut candidates: Vec<usize> = (0..n).collect();
        candidates.sort_by(|&a, &b| {
            marginal(i, a)
                .partial_cmp(&marginal(i, b))
                .expect("marginal costs are finite")
                .then(a.cmp(&b))
        });
        // Two passes over the candidates. Pass 0 is *voluntary*
        // redirection: a remote site is taken only when its marginal
        // cost clears the hysteresis margin against the local price.
        // Pass 1 is *overflow*: whatever the voluntary pass (including
        // the capped local site) could not place takes any site with
        // room, margin or not — a remote site skipped as "not cheap
        // enough" in pass 0 is still far better than over-committing a
        // capped local site.
        for pass in 0..2 {
            if remaining <= 0.0 {
                break;
            }
            for &j in &candidates {
                if remaining <= 0.0 {
                    break;
                }
                if residual[j] <= 0.0 {
                    continue;
                }
                if pass == 0
                    && j != i
                    && marginal(i, j) >= local_price[i] * (1.0 - policy.redirect_margin)
                {
                    continue;
                }
                let take = remaining.min(residual[j]);
                assignment[i][j] += take;
                residual[j] -= take;
                remaining -= take;
                cost += take * marginal(i, j);
                if j != i {
                    redirected += take;
                }
            }
        }
        // Every cap exhausted: the local site serves the rest anyway
        // (caps are planning limits, not brownouts).
        if remaining > 0.0 {
            assignment[i][i] += remaining;
            cost += remaining * local_price[i];
        }
    }

    Ok(GlobalPlacement {
        assignment,
        redirected_bps: redirected,
        estimated_hourly_cost: cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper price reference: $0.45/h per 1.25 MB/s VM.
    const BW_PRICE: f64 = 0.45 / 1.25e6;

    /// Each site's published price: the reference times its factor.
    fn prices(sites: &[SiteSpec]) -> Vec<f64> {
        sites.iter().map(|s| BW_PRICE * s.vm_price_factor).collect()
    }

    fn sites(factors: &[f64], caps: &[f64]) -> Vec<SiteSpec> {
        factors
            .iter()
            .zip(caps)
            .map(|(&f, &c)| SiteSpec {
                vm_price_factor: f,
                capacity_cap_bps: c,
                egress_price_per_gb: 0.01,
            })
            .collect()
    }

    #[test]
    fn disabled_policy_serves_everything_locally() {
        let s = sites(&[1.0, 1.3], &[10.0, 10.0]);
        let p = plan_global_placement(
            &[100.0, 100.0],
            &s,
            &prices(&s),
            &FederationPolicy::independent(),
        )
        .unwrap();
        assert_eq!(p.assignment[0][0], 100.0);
        assert_eq!(p.assignment[1][1], 100.0);
        assert_eq!(p.redirected_bps, 0.0);
        assert_eq!(p.redirected_share(), 0.0);
    }

    #[test]
    fn expensive_region_redirects_to_cheap_one_when_worthwhile() {
        // Site 1 is 30 % dearer; transfer + penalty cost far less than
        // the 30 % VM premium at these prices, so region 1's demand moves
        // to site 0 while site 0 has room.
        let s = sites(&[1.0, 1.3], &[2e6, 2e6]);
        let p = plan_global_placement(&[0.0, 1e6], &s, &prices(&s), &FederationPolicy::federated())
            .unwrap();
        assert!(
            p.assignment[1][0] > 0.999e6,
            "assignment {:?}",
            p.assignment
        );
        assert!((p.redirect_fraction(1) - 1.0).abs() < 1e-9);
        // Row sum conservation.
        let served: f64 = p.assignment[1].iter().sum();
        assert!((served - 1e6).abs() < 1e-6);
    }

    #[test]
    fn margin_blocks_marginal_redirection() {
        // 3 % price difference < 5 % margin: stay local.
        let s = sites(&[1.0, 1.03], &[2e6, 2e6]);
        let p = plan_global_placement(&[0.0, 1e6], &s, &prices(&s), &FederationPolicy::federated())
            .unwrap();
        assert_eq!(p.assignment[1][0], 0.0);
        assert!((p.assignment[1][1] - 1e6).abs() < 1e-6);
    }

    #[test]
    fn overflow_spills_to_remote_capacity_then_falls_back_local() {
        // Same price everywhere (no voluntary redirection), but region 0
        // overflows its 1 MB/s cap threefold: the second MB/s takes the
        // remote site's spare capacity (overflow redirection buys real
        // serving headroom even at a transfer premium), and only once
        // every cap is exhausted does the rest land back on the over-cap
        // local site.
        let s = sites(&[1.0, 1.0], &[1e6, 1e6]);
        let p = plan_global_placement(&[3e6, 0.0], &s, &prices(&s), &FederationPolicy::federated())
            .unwrap();
        assert!(
            (p.assignment[0][0] - 2e6).abs() < 1e-6,
            "{:?}",
            p.assignment
        );
        assert!((p.assignment[0][1] - 1e6).abs() < 1e-6);
        assert!((p.redirected_bps - 1e6).abs() < 1e-6);
    }

    #[test]
    fn margin_skipped_remote_is_revisited_for_overflow() {
        // Site 1 is 3 % cheaper — inside the 5 % hysteresis margin, so
        // region 0 does not *voluntarily* redirect to it. But region 0
        // overflows its 1 MB/s cap threefold, and the overflow pass must
        // come back to the margin-skipped remote site (with 10 MB/s of
        // room) rather than over-committing the capped local site.
        let s = sites(&[1.0, 0.97], &[1e6, 10e6]);
        let p = plan_global_placement(&[3e6, 0.0], &s, &prices(&s), &FederationPolicy::federated())
            .unwrap();
        assert!(
            (p.assignment[0][0] - 1e6).abs() < 1e-6,
            "local serves exactly its cap: {:?}",
            p.assignment
        );
        assert!((p.assignment[0][1] - 2e6).abs() < 1e-6);
        assert!((p.redirected_bps - 2e6).abs() < 1e-6);
    }

    #[test]
    fn federated_cost_never_exceeds_independent_cost() {
        // While no region overflows its cap, the all-local assignment is
        // feasible and the greedy placement can only improve on it. (Once
        // a cap overflows the comparison is no longer cost-only: the
        // federation pays a transfer premium to buy serving capacity the
        // capped local site physically lacks.)
        let s = paper_sites();
        let policy = FederationPolicy::federated();
        for demands in [
            vec![10e6, 20e6, 55e6],
            vec![50e6, 50e6, 50e6],
            vec![0.0, 0.0, 5e6],
            vec![75e6, 3e6, 1e6],
        ] {
            let fed = plan_global_placement(&demands, &s, &prices(&s), &policy).unwrap();
            let ind =
                plan_global_placement(&demands, &s, &prices(&s), &FederationPolicy::independent())
                    .unwrap();
            assert!(
                fed.estimated_hourly_cost <= ind.estimated_hourly_cost + 1e-9,
                "federated {} > independent {} for {demands:?}",
                fed.estimated_hourly_cost,
                ind.estimated_hourly_cost
            );
            // Conservation per region.
            for (i, &d) in demands.iter().enumerate() {
                let served: f64 = fed.assignment[i].iter().sum();
                assert!((served - d).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let s = paper_sites();
        let policy = FederationPolicy::federated();
        let pr = prices(&s);
        assert!(plan_global_placement(&[1.0], &s, &pr, &policy).is_err());
        assert!(plan_global_placement(&[1.0, 1.0, f64::NAN], &s, &pr, &policy).is_err());
        assert!(plan_global_placement(&[1.0, 1.0, -1.0], &s, &pr, &policy).is_err());
        assert!(plan_global_placement(&[1.0, 1.0, 1.0], &s, &[0.0; 3], &policy).is_err());
        assert!(plan_global_placement(&[1.0, 1.0, 1.0], &s, &pr[..2], &policy).is_err());
        let mut bad = paper_sites();
        bad[0].vm_price_factor = 0.0;
        assert!(plan_global_placement(&[1.0, 1.0, 1.0], &bad, &pr, &policy).is_err());
        let mut bad_policy = FederationPolicy::federated();
        bad_policy.redirect_margin = 1.5;
        assert!(plan_global_placement(&[1.0, 1.0, 1.0], &s, &pr, &bad_policy).is_err());
    }

    #[test]
    fn site_load_sums_columns() {
        let s = sites(&[1.0, 1.3], &[2e6, 2e6]);
        let p = plan_global_placement(&[1e6, 1e6], &s, &prices(&s), &FederationPolicy::federated())
            .unwrap();
        let total: f64 = (0..2).map(|j| p.site_load(j)).sum();
        assert!((total - 2e6).abs() < 1e-6);
    }
}
