//! The dynamic cloud provisioning controller (paper Sec. V-B).
//!
//! Once per interval `T` (one hour in the paper, matching hourly cloud
//! billing), the controller:
//!
//! 1. ingests the tracker's measured statistics (`Λ(c)`, `α`, `P(c)`),
//! 2. predicts next-interval demand (last-interval by default),
//! 3. derives per-chunk equilibrium cloud demand `Δ_i` via the Sec. IV
//!    analysis (client–server or P2P),
//! 4. solves the VM configuration heuristic for VM targets per cluster,
//! 5. re-solves the storage rental heuristic when demand has shifted
//!    significantly since the current placement,
//! 6. emits a [`ProvisioningPlan`] to submit through the cloud broker.

use std::collections::BTreeMap;

use cloudmedia_cloud::broker::SlaTerms;
use cloudmedia_cloud::scheduler::{ChunkKey, PlacementPlan};
use serde::{Deserialize, Serialize};

use crate::analysis::client_server::{
    capacity_demand_with_target, pooled_capacity_demand_with_target, ProvisioningTarget,
};
use crate::analysis::p2p::{
    p2p_capacity_hetero, p2p_capacity_opts, P2pAnalysisOptions, PsiEstimator, UploadClass,
};
use crate::analysis::DemandPooling;
use crate::channel::ChannelModel;
use crate::error::{invalid_param, CoreError};
use crate::predictor::{ChannelObservation, DemandPredictor, PredictorKind};
use crate::provisioning::storage::{ChunkDemand, StorageProblem};
use crate::provisioning::vm::{VmPlan, VmProblem};

/// Streaming architecture the controller provisions for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamingMode {
    /// All chunks served by the cloud.
    ClientServer,
    /// Mesh P2P with cloud supplementation.
    P2p {
        /// Mean per-peer upload capacity `u`, bytes per second.
        mean_upload: f64,
        /// Joint-ownership estimator for the Eqn. 5 waterfilling.
        psi: PsiEstimator,
    },
}

/// Controller configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Provisioning interval `T`, seconds (paper: 3600).
    pub interval_seconds: f64,
    /// VM rental budget `B_M`, dollars per hour (paper: 100).
    pub vm_budget_per_hour: f64,
    /// Storage budget `B_S`, dollars per hour (paper: 1).
    pub storage_budget_per_hour: f64,
    /// Streaming architecture.
    pub mode: StreamingMode,
    /// Streaming playback rate `r`, bytes per second.
    pub streaming_rate: f64,
    /// Chunk playback time `T0`, seconds.
    pub chunk_seconds: f64,
    /// Per-VM bandwidth `R`, bytes per second.
    pub vm_bandwidth: f64,
    /// Relative L1 demand shift above which the storage placement is
    /// recomputed (paper: recompute "if the demand for chunks has changed
    /// significantly").
    pub placement_refresh_threshold: f64,
    /// Multiplier applied to every chunk demand before provisioning
    /// (1.0 = provision exactly the equilibrium demand).
    pub safety_factor: f64,
    /// Demand pooling model (see [`DemandPooling`]).
    pub pooling: DemandPooling,
    /// Minimum cloud reserve in P2P mode, as a fraction of each chunk's
    /// baseline (peer-less) capacity demand. Guards against the analytic
    /// peer contribution being optimistic right at supply/demand parity,
    /// where `Δ_i` would otherwise vanish and leave no fallback for
    /// replica-thin chunks or estimation error. The paper's own P2P
    /// reservations (Fig. 4) never approach zero.
    pub p2p_cloud_floor: f64,
    /// Retrieval-time guarantee used when sizing capacity (the paper's
    /// mean-sojourn criterion, or the tail-aware quantile extension).
    pub target: ProvisioningTarget,
    /// What to do when the VM budget cannot cover the derived demand.
    pub budget_policy: BudgetPolicy,
    /// Optional heterogeneous peer upload classes; when set (P2P mode),
    /// the waterfilling uses the per-class analysis instead of the single
    /// mean upload.
    pub upload_classes: Option<Vec<UploadClass>>,
}

/// Behaviour when the derived demand exceeds the VM budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BudgetPolicy {
    /// The paper's behaviour: fail with the required budget so the
    /// provider can raise it.
    #[default]
    Strict,
    /// Degrade gracefully: scale every chunk's demand down uniformly
    /// until the cheapest assignment fits the budget, trading streaming
    /// quality for a hard cost cap.
    BestEffort,
}

impl ControllerConfig {
    /// The paper's experimental configuration for the given mode.
    pub fn paper_default(mode: StreamingMode) -> Self {
        Self {
            interval_seconds: 3600.0,
            vm_budget_per_hour: 100.0,
            storage_budget_per_hour: 1.0,
            mode,
            streaming_rate: 50_000.0,
            chunk_seconds: 300.0,
            vm_bandwidth: 10e6 / 8.0,
            placement_refresh_threshold: 0.2,
            safety_factor: 1.0,
            pooling: DemandPooling::ChannelPooled,
            p2p_cloud_floor: 0.15,
            target: ProvisioningTarget::MeanSojourn,
            budget_policy: BudgetPolicy::Strict,
            upload_classes: None,
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        if !(self.interval_seconds.is_finite() && self.interval_seconds > 0.0) {
            return Err(invalid_param("interval_seconds", "must be positive"));
        }
        if !(self.safety_factor.is_finite() && self.safety_factor > 0.0) {
            return Err(invalid_param("safety_factor", "must be positive"));
        }
        if !(self.placement_refresh_threshold.is_finite()
            && self.placement_refresh_threshold >= 0.0)
        {
            return Err(invalid_param(
                "placement_refresh_threshold",
                "must be non-negative",
            ));
        }
        if let StreamingMode::P2p { mean_upload, .. } = self.mode {
            if !(mean_upload.is_finite() && mean_upload >= 0.0) {
                return Err(invalid_param("mean_upload", "must be non-negative"));
            }
        }
        if !(self.p2p_cloud_floor.is_finite() && (0.0..=1.0).contains(&self.p2p_cloud_floor)) {
            return Err(invalid_param("p2p_cloud_floor", "must be in [0, 1]"));
        }
        Ok(())
    }
}

/// The plan the controller sends to the cloud for the next interval.
#[derive(Debug, Clone)]
pub struct ProvisioningPlan {
    /// Target VM counts per virtual cluster.
    pub vm_targets: Vec<usize>,
    /// New chunk placement, or `None` when the existing one is kept.
    pub placement: Option<PlacementPlan>,
    /// The per-chunk cloud demands `Δ_i` (after the safety factor).
    pub chunk_demands: Vec<ChunkDemand>,
    /// Total cloud demand, bytes per second.
    pub total_cloud_demand: f64,
    /// Expected peer contribution, bytes per second (zero in C/S mode).
    pub expected_peer_contribution: f64,
    /// The solved VM configuration.
    pub vm_plan: VmPlan,
    /// Aggregate storage utility of the (possibly retained) placement.
    pub storage_utility: f64,
}

/// The dynamic provisioning controller.
#[derive(Debug)]
pub struct Controller {
    config: ControllerConfig,
    predictor: DemandPredictor,
    current_placement: Option<PlacementPlan>,
    placement_demands: BTreeMap<ChunkKey, f64>,
    last_good: Option<ProvisioningPlan>,
}

impl Controller {
    /// Creates a controller with the given prediction strategy.
    ///
    /// # Errors
    ///
    /// Propagates configuration and predictor validation failures.
    pub fn new(config: ControllerConfig, predictor: PredictorKind) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Self {
            config,
            predictor: DemandPredictor::new(predictor)?,
            current_placement: None,
            placement_demands: BTreeMap::new(),
            last_good: None,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Scales the VM rental budget `B_M` by `factor` — the mid-run
    /// budget-cut (or raise) shock of the fault plane. Prediction and
    /// placement state carry over, so the next interval re-optimizes the
    /// same demand under the new budget.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive factors.
    pub fn scale_vm_budget(&mut self, factor: f64) -> Result<(), CoreError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(invalid_param("factor", "must be positive"));
        }
        self.config.vm_budget_per_hour *= factor;
        Ok(())
    }

    /// The most recent successfully planned interval, if any — the
    /// last-known-good plan the simulator falls back to when tracker
    /// measurements drop out mid-run.
    pub fn last_good_plan(&self) -> Option<&ProvisioningPlan> {
        self.last_good.as_ref()
    }

    /// The current chunk placement, if any has been computed.
    pub fn current_placement(&self) -> Option<&PlacementPlan> {
        self.current_placement.as_ref()
    }

    /// Runs one provisioning interval: ingest measured stats, predict,
    /// analyze, optimize. `stats` carries one entry per channel (channels
    /// with no entry reuse their previous prediction).
    ///
    /// # Errors
    ///
    /// Propagates analysis and optimization failures, including the
    /// paper's infeasible-budget signal.
    pub fn plan_interval(
        &mut self,
        stats: &[(usize, ChannelObservation)],
        sla: &SlaTerms,
    ) -> Result<ProvisioningPlan, CoreError> {
        for (channel, obs) in stats {
            self.predictor.observe(*channel, obs.clone());
        }
        // Channels we have ever observed, in stable order.
        let mut channels: Vec<usize> = stats.iter().map(|(c, _)| *c).collect();
        for &c in self.placement_demands.keys().map(|k| &k.channel) {
            if !channels.contains(&c) {
                channels.push(c);
            }
        }
        channels.sort_unstable();
        channels.dedup();

        let mut chunk_demands: Vec<ChunkDemand> = Vec::new();
        let mut total_cloud = 0.0;
        let mut total_peer = 0.0;
        for &channel in &channels {
            let Some(predicted) = self.predictor.predict(channel) else {
                continue;
            };
            let model = ChannelModel {
                id: channel,
                streaming_rate: self.config.streaming_rate,
                chunk_seconds: self.config.chunk_seconds,
                vm_bandwidth: self.config.vm_bandwidth,
                arrival_rate: predicted.arrival_rate,
                alpha: predicted.alpha,
                routing: predicted.routing.clone(),
            };
            let baseline = |model: &ChannelModel| -> Result<Vec<f64>, CoreError> {
                Ok(match self.config.pooling {
                    DemandPooling::PerChunk => {
                        capacity_demand_with_target(model, self.config.target)?.upload_demand
                    }
                    DemandPooling::ChannelPooled => {
                        pooled_capacity_demand_with_target(model, self.config.target)?.upload_demand
                    }
                })
            };
            let cloud_demand: Vec<f64> = match self.config.mode {
                StreamingMode::ClientServer => baseline(&model)?,
                StreamingMode::P2p { mean_upload, psi } => {
                    let opts = P2pAnalysisOptions {
                        psi,
                        pooling: self.config.pooling,
                        target: self.config.target,
                    };
                    let p = match &self.config.upload_classes {
                        Some(classes) => p2p_capacity_hetero(&model, classes, opts)?,
                        None => p2p_capacity_opts(&model, mean_upload, opts)?,
                    };
                    total_peer += p.total_peer_contribution();
                    // Enforce the minimum fallback reserve per chunk.
                    let floor = self.config.p2p_cloud_floor;
                    p.cloud_demand
                        .iter()
                        .zip(&baseline(&model)?)
                        .map(|(&d, &b)| d.max(floor * b))
                        .collect()
                }
            };
            for (chunk, &demand) in cloud_demand.iter().enumerate() {
                let scaled = demand * self.config.safety_factor;
                total_cloud += scaled;
                chunk_demands.push(ChunkDemand {
                    key: ChunkKey { channel, chunk },
                    demand: scaled,
                });
            }
        }

        // VM configuration (Sec. V-A.2).
        let vm_plan = {
            let vm_problem = VmProblem {
                demands: &chunk_demands,
                clusters: &sla.virtual_clusters,
                budget_per_hour: self.config.vm_budget_per_hour,
            };
            match vm_problem.greedy() {
                Ok(plan) => plan,
                Err(CoreError::Infeasible {
                    required_budget,
                    configured_budget,
                    ..
                }) if self.config.budget_policy == BudgetPolicy::BestEffort
                    && required_budget > 0.0 =>
                {
                    // Degrade uniformly to fit the budget (small headroom
                    // below the exact ratio absorbs rounding).
                    let scale = (configured_budget / required_budget) * 0.999;
                    for d in &mut chunk_demands {
                        d.demand *= scale;
                    }
                    total_cloud *= scale;
                    let scaled = VmProblem {
                        demands: &chunk_demands,
                        clusters: &sla.virtual_clusters,
                        budget_per_hour: self.config.vm_budget_per_hour,
                    };
                    scaled.greedy()?
                }
                Err(e) => return Err(e),
            }
        };

        // Storage rental (Sec. V-A.1): recompute on first run or when the
        // demand profile shifted beyond the threshold.
        let new_demand_map: BTreeMap<ChunkKey, f64> =
            chunk_demands.iter().map(|d| (d.key, d.demand)).collect();
        let needs_refresh = match &self.current_placement {
            None => true,
            Some(placement) => {
                // New chunks (new videos) force a re-placement.
                chunk_demands
                    .iter()
                    .any(|d| !placement.contains_key(&d.key))
                    || demand_shift(&self.placement_demands, &new_demand_map)
                        > self.config.placement_refresh_threshold
            }
        };
        let chunk_bytes = (self.config.streaming_rate * self.config.chunk_seconds) as u64;
        let placement_out = if needs_refresh {
            let storage_problem = StorageProblem {
                demands: &chunk_demands,
                clusters: &sla.nfs_clusters,
                chunk_bytes,
                budget_per_hour: self.config.storage_budget_per_hour,
            };
            let plan = storage_problem.greedy()?;
            self.current_placement = Some(plan.placement.clone());
            self.placement_demands = new_demand_map.clone();
            Some(plan.placement)
        } else {
            None
        };

        let storage_utility = self
            .current_placement
            .as_ref()
            .map(|p| {
                crate::provisioning::storage::placement_utility(
                    p,
                    &sla.nfs_clusters,
                    &new_demand_map,
                )
            })
            .unwrap_or(0.0);

        let plan = ProvisioningPlan {
            vm_targets: vm_plan.vm_targets.clone(),
            placement: placement_out,
            chunk_demands,
            total_cloud_demand: total_cloud,
            expected_peer_contribution: total_peer,
            vm_plan,
            storage_utility,
        };
        self.last_good = Some(plan.clone());
        Ok(plan)
    }
}

/// Relative L1 shift between two demand maps.
fn demand_shift(old: &BTreeMap<ChunkKey, f64>, new: &BTreeMap<ChunkKey, f64>) -> f64 {
    let mut diff = 0.0;
    let mut base = 0.0;
    for (k, &v) in old {
        diff += (v - new.get(k).copied().unwrap_or(0.0)).abs();
        base += v;
    }
    for (k, &v) in new {
        if !old.contains_key(k) {
            diff += v;
        }
    }
    if base <= 0.0 {
        return if diff > 0.0 { f64::INFINITY } else { 0.0 };
    }
    diff / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};

    fn sla() -> SlaTerms {
        SlaTerms {
            virtual_clusters: paper_virtual_clusters(),
            nfs_clusters: paper_nfs_clusters(),
        }
    }

    fn observation(rate: f64) -> ChannelObservation {
        let model = ChannelModel::paper_default(0, rate);
        ChannelObservation {
            arrival_rate: rate,
            alpha: model.alpha,
            routing: model.routing,
        }
    }

    fn controller(mode: StreamingMode) -> Controller {
        Controller::new(
            ControllerConfig::paper_default(mode),
            PredictorKind::LastInterval,
        )
        .unwrap()
    }

    #[test]
    fn first_interval_produces_full_plan() {
        let mut c = controller(StreamingMode::ClientServer);
        let plan = c.plan_interval(&[(0, observation(0.3))], &sla()).unwrap();
        assert!(plan.placement.is_some(), "first interval places storage");
        assert!(plan.vm_targets.iter().sum::<usize>() > 0);
        assert!(plan.total_cloud_demand > 0.0);
        assert_eq!(plan.expected_peer_contribution, 0.0);
    }

    #[test]
    fn p2p_mode_needs_less_cloud() {
        let mut cs = controller(StreamingMode::ClientServer);
        let mut p2p = controller(StreamingMode::P2p {
            mean_upload: 60_000.0,
            psi: PsiEstimator::Independent,
        });
        let cs_plan = cs.plan_interval(&[(0, observation(0.4))], &sla()).unwrap();
        let p2p_plan = p2p.plan_interval(&[(0, observation(0.4))], &sla()).unwrap();
        assert!(p2p_plan.total_cloud_demand < cs_plan.total_cloud_demand);
        assert!(p2p_plan.expected_peer_contribution > 0.0);
        assert!(
            p2p_plan.vm_plan.integer_hourly_cost < cs_plan.vm_plan.integer_hourly_cost,
            "P2P rents fewer VM dollars"
        );
    }

    #[test]
    fn stable_demand_keeps_placement() {
        let mut c = controller(StreamingMode::ClientServer);
        let p1 = c.plan_interval(&[(0, observation(0.3))], &sla()).unwrap();
        assert!(p1.placement.is_some());
        let p2 = c.plan_interval(&[(0, observation(0.3))], &sla()).unwrap();
        assert!(p2.placement.is_none(), "identical demand: no re-placement");
        assert!(p2.storage_utility > 0.0, "utility still evaluated");
    }

    #[test]
    fn large_demand_shift_triggers_replacement() {
        let mut c = controller(StreamingMode::ClientServer);
        c.plan_interval(&[(0, observation(0.2))], &sla()).unwrap();
        let p2 = c.plan_interval(&[(0, observation(1.2))], &sla()).unwrap();
        assert!(p2.placement.is_some(), "6x demand shift re-places storage");
    }

    #[test]
    fn new_channel_forces_replacement() {
        let mut c = controller(StreamingMode::ClientServer);
        c.plan_interval(&[(0, observation(0.3))], &sla()).unwrap();
        let mut obs1 = observation(0.3);
        obs1.arrival_rate = 0.3;
        let p2 = c
            .plan_interval(&[(0, observation(0.3)), (1, obs1)], &sla())
            .unwrap();
        assert!(p2.placement.is_some(), "new video deployed: re-place");
        let placement = p2.placement.unwrap();
        assert!(placement.keys().any(|k| k.channel == 1));
    }

    #[test]
    fn vm_targets_track_demand_up_and_down() {
        let mut c = controller(StreamingMode::ClientServer);
        let low = c.plan_interval(&[(0, observation(0.1))], &sla()).unwrap();
        let high = c.plan_interval(&[(0, observation(1.0))], &sla()).unwrap();
        let low2 = c.plan_interval(&[(0, observation(0.1))], &sla()).unwrap();
        let sum = |p: &ProvisioningPlan| p.vm_targets.iter().sum::<usize>();
        assert!(sum(&high) > sum(&low));
        assert_eq!(sum(&low2), sum(&low), "scaling back down is symmetric");
    }

    #[test]
    fn channel_without_new_stats_reuses_prediction() {
        let mut c = controller(StreamingMode::ClientServer);
        let p1 = c.plan_interval(&[(0, observation(0.5))], &sla()).unwrap();
        // Next interval reports nothing for channel 0; demand persists.
        let p2 = c.plan_interval(&[], &sla()).unwrap();
        assert!((p2.total_cloud_demand - p1.total_cloud_demand).abs() < 1e-6);
    }

    #[test]
    fn safety_factor_scales_demand() {
        let mut base = controller(StreamingMode::ClientServer);
        let mut cfg = ControllerConfig::paper_default(StreamingMode::ClientServer);
        cfg.safety_factor = 1.5;
        let mut padded = Controller::new(cfg, PredictorKind::LastInterval).unwrap();
        let p_base = base
            .plan_interval(&[(0, observation(0.4))], &sla())
            .unwrap();
        let p_padded = padded
            .plan_interval(&[(0, observation(0.4))], &sla())
            .unwrap();
        assert!((p_padded.total_cloud_demand - 1.5 * p_base.total_cloud_demand).abs() < 1e-6);
    }

    #[test]
    fn best_effort_policy_degrades_instead_of_failing() {
        let mut cfg = ControllerConfig::paper_default(StreamingMode::ClientServer);
        cfg.vm_budget_per_hour = 10.0;
        cfg.budget_policy = BudgetPolicy::BestEffort;
        let mut c = Controller::new(cfg, PredictorKind::LastInterval).unwrap();
        let plan = c.plan_interval(&[(0, observation(1.0))], &sla()).unwrap();
        assert!(
            plan.vm_plan.integer_hourly_cost <= 10.0 + 0.81,
            "cost capped (one VM of slack)"
        );
        assert!(plan.total_cloud_demand > 0.0, "still provisions something");

        // Strict policy with the same inputs fails.
        let mut strict_cfg = ControllerConfig::paper_default(StreamingMode::ClientServer);
        strict_cfg.vm_budget_per_hour = 10.0;
        let mut strict = Controller::new(strict_cfg, PredictorKind::LastInterval).unwrap();
        assert!(strict
            .plan_interval(&[(0, observation(1.0))], &sla())
            .is_err());
    }

    #[test]
    fn best_effort_with_sufficient_budget_changes_nothing() {
        let mut cfg = ControllerConfig::paper_default(StreamingMode::ClientServer);
        cfg.budget_policy = BudgetPolicy::BestEffort;
        let mut best = Controller::new(cfg, PredictorKind::LastInterval).unwrap();
        let mut strict = controller(StreamingMode::ClientServer);
        let a = best
            .plan_interval(&[(0, observation(0.3))], &sla())
            .unwrap();
        let b = strict
            .plan_interval(&[(0, observation(0.3))], &sla())
            .unwrap();
        assert_eq!(a.vm_targets, b.vm_targets);
        assert!((a.total_cloud_demand - b.total_cloud_demand).abs() < 1e-9);
    }

    #[test]
    fn infeasible_budget_is_surfaced() {
        let mut cfg = ControllerConfig::paper_default(StreamingMode::ClientServer);
        cfg.vm_budget_per_hour = 0.01;
        let mut c = Controller::new(cfg, PredictorKind::LastInterval).unwrap();
        let err = c
            .plan_interval(&[(0, observation(1.0))], &sla())
            .unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
    }

    #[test]
    fn upload_classes_override_mean_upload() {
        // Single class identical to the mean: same plan.
        let mut cfg = ControllerConfig::paper_default(StreamingMode::P2p {
            mean_upload: 34_000.0,
            psi: PsiEstimator::Independent,
        });
        cfg.upload_classes = Some(vec![UploadClass {
            share: 1.0,
            upload: 34_000.0,
        }]);
        let mut hetero = Controller::new(cfg, PredictorKind::LastInterval).unwrap();
        let mut homo = controller(StreamingMode::P2p {
            mean_upload: 34_000.0,
            psi: PsiEstimator::Independent,
        });
        let a = hetero
            .plan_interval(&[(0, observation(0.3))], &sla())
            .unwrap();
        let b = homo
            .plan_interval(&[(0, observation(0.3))], &sla())
            .unwrap();
        assert!((a.total_cloud_demand - b.total_cloud_demand).abs() < 1e-6);

        // A poorer class mix needs more cloud.
        let mut poor_cfg = ControllerConfig::paper_default(StreamingMode::P2p {
            mean_upload: 34_000.0,
            psi: PsiEstimator::Independent,
        });
        poor_cfg.upload_classes = Some(vec![
            UploadClass {
                share: 0.9,
                upload: 10_000.0,
            },
            UploadClass {
                share: 0.1,
                upload: 34_000.0,
            },
        ]);
        let mut poor = Controller::new(poor_cfg, PredictorKind::LastInterval).unwrap();
        let c = poor
            .plan_interval(&[(0, observation(0.3))], &sla())
            .unwrap();
        assert!(c.total_cloud_demand > b.total_cloud_demand);
    }

    #[test]
    fn budget_shock_shrinks_the_plan_and_fallback_survives() {
        let mut cfg = ControllerConfig::paper_default(StreamingMode::ClientServer);
        cfg.budget_policy = BudgetPolicy::BestEffort;
        let mut c = Controller::new(cfg, PredictorKind::LastInterval).unwrap();
        assert!(c.last_good_plan().is_none());
        let before = c.plan_interval(&[(0, observation(1.0))], &sla()).unwrap();
        // Cut the budget 10x: best-effort now degrades the same demand.
        c.scale_vm_budget(0.1).unwrap();
        let after = c.plan_interval(&[(0, observation(1.0))], &sla()).unwrap();
        assert!(after.vm_plan.integer_hourly_cost < before.vm_plan.integer_hourly_cost);
        // The fallback tracks the most recent success.
        let fallback = c.last_good_plan().unwrap();
        assert_eq!(fallback.vm_targets, after.vm_targets);
        assert!(c.scale_vm_budget(0.0).is_err());
        assert!(c.scale_vm_budget(f64::NAN).is_err());
    }

    #[test]
    fn demand_shift_metric() {
        let mut a = BTreeMap::new();
        a.insert(
            ChunkKey {
                channel: 0,
                chunk: 0,
            },
            10.0,
        );
        let mut b = a.clone();
        assert_eq!(demand_shift(&a, &b), 0.0);
        b.insert(
            ChunkKey {
                channel: 0,
                chunk: 0,
            },
            15.0,
        );
        assert!((demand_shift(&a, &b) - 0.5).abs() < 1e-12);
        b.insert(
            ChunkKey {
                channel: 0,
                chunk: 1,
            },
            10.0,
        );
        assert!((demand_shift(&a, &b) - 1.5).abs() < 1e-12);
        a.clear();
        assert_eq!(demand_shift(&a, &b), f64::INFINITY);
        b.clear();
        assert_eq!(demand_shift(&a, &b), 0.0);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = ControllerConfig::paper_default(StreamingMode::ClientServer);
        cfg.interval_seconds = 0.0;
        assert!(Controller::new(cfg, PredictorKind::LastInterval).is_err());
        let mut cfg = ControllerConfig::paper_default(StreamingMode::ClientServer);
        cfg.safety_factor = 0.0;
        assert!(Controller::new(cfg, PredictorKind::LastInterval).is_err());
        let cfg = ControllerConfig::paper_default(StreamingMode::P2p {
            mean_upload: -5.0,
            psi: PsiEstimator::Independent,
        });
        assert!(Controller::new(cfg, PredictorKind::LastInterval).is_err());
    }
}
