//! Virtual (VM) and NFS cluster specifications.
//!
//! The paper's cloud groups computing servers into *virtual clusters* of
//! identically configured VMs and storage servers into *NFS clusters* by
//! performance level. Tables II and III give the exact experimental
//! configurations, reproduced here as constructors.

use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, CloudError};
use crate::pricing::Rate;

/// Specification of one virtual cluster (paper Table II row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualClusterSpec {
    /// Display name (e.g. "Standard").
    pub name: String,
    /// Performance factor `u~_v`; larger is better.
    pub utility: f64,
    /// Rental price per VM per hour `p~_v`.
    pub price: Rate,
    /// Maximum VMs the cluster can provision, `N_v`.
    pub max_vms: usize,
    /// Guaranteed bandwidth per VM, `R`, in bytes per second.
    pub vm_bandwidth_bytes_per_sec: f64,
}

impl VirtualClusterSpec {
    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive utility, bandwidth, or price.
    pub fn validate(&self) -> Result<(), CloudError> {
        if !(self.utility.is_finite() && self.utility > 0.0) {
            return Err(invalid_param(
                "utility",
                format!("must be positive, got {}", self.utility),
            ));
        }
        if !(self.price.dollars_per_hour.is_finite() && self.price.dollars_per_hour > 0.0) {
            return Err(invalid_param(
                "price",
                format!("must be positive, got {}", self.price.dollars_per_hour),
            ));
        }
        if !(self.vm_bandwidth_bytes_per_sec.is_finite() && self.vm_bandwidth_bytes_per_sec > 0.0) {
            return Err(invalid_param(
                "vm_bandwidth_bytes_per_sec",
                format!("must be positive, got {}", self.vm_bandwidth_bytes_per_sec),
            ));
        }
        Ok(())
    }

    /// Marginal utility per dollar, the sort key of the paper's VM
    /// configuration heuristic (`u~_v / p~_v`).
    pub fn utility_per_dollar(&self) -> f64 {
        self.utility / self.price.dollars_per_hour
    }
}

/// Specification of one NFS cluster (paper Table III row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfsClusterSpec {
    /// Display name (e.g. "High").
    pub name: String,
    /// Performance factor `u_f`; larger is better.
    pub utility: f64,
    /// Storage price per gigabyte per hour, `p_f`.
    pub price_per_gb: Rate,
    /// Storage capacity `S_f` in bytes.
    pub capacity_bytes: u64,
}

impl NfsClusterSpec {
    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive utility, price, or capacity.
    pub fn validate(&self) -> Result<(), CloudError> {
        if !(self.utility.is_finite() && self.utility > 0.0) {
            return Err(invalid_param(
                "utility",
                format!("must be positive, got {}", self.utility),
            ));
        }
        if !(self.price_per_gb.dollars_per_hour.is_finite()
            && self.price_per_gb.dollars_per_hour > 0.0)
        {
            return Err(invalid_param(
                "price_per_gb",
                format!(
                    "must be positive, got {}",
                    self.price_per_gb.dollars_per_hour
                ),
            ));
        }
        if self.capacity_bytes == 0 {
            return Err(invalid_param("capacity_bytes", "must be positive"));
        }
        Ok(())
    }

    /// Marginal utility per dollar-per-GB-hour, the sort key of the
    /// paper's storage rental heuristic (`u_f / p_f`).
    pub fn utility_per_dollar(&self) -> f64 {
        self.utility / self.price_per_gb.dollars_per_hour
    }

    /// Price of storing `bytes` for `seconds`.
    pub fn storage_charge(&self, bytes: u64, seconds: f64) -> crate::pricing::Money {
        self.price_per_gb.charge(bytes as f64 / GIB, seconds)
    }
}

/// Bytes per gigabyte (decimal, as cloud providers bill).
pub const GIB: f64 = 1e9;

/// 10 Mbps in bytes per second — the fixed VM bandwidth `R` of the paper's
/// experiments.
pub const PAPER_VM_BANDWIDTH: f64 = 10e6 / 8.0;

/// The paper's Table II: three virtual clusters.
///
/// | Type     | Utility | Price/h | VMs |
/// |----------|---------|---------|-----|
/// | Standard | 0.6     | $0.450  | 75  |
/// | Medium   | 0.8     | $0.700  | 30  |
/// | Advanced | 1.0     | $0.800  | 45  |
pub fn paper_virtual_clusters() -> Vec<VirtualClusterSpec> {
    vec![
        VirtualClusterSpec {
            name: "Standard".to_owned(),
            utility: 0.6,
            price: Rate::per_hour(0.450),
            max_vms: 75,
            vm_bandwidth_bytes_per_sec: PAPER_VM_BANDWIDTH,
        },
        VirtualClusterSpec {
            name: "Medium".to_owned(),
            utility: 0.8,
            price: Rate::per_hour(0.700),
            max_vms: 30,
            vm_bandwidth_bytes_per_sec: PAPER_VM_BANDWIDTH,
        },
        VirtualClusterSpec {
            name: "Advanced".to_owned(),
            utility: 1.0,
            price: Rate::per_hour(0.800),
            max_vms: 45,
            vm_bandwidth_bytes_per_sec: PAPER_VM_BANDWIDTH,
        },
    ]
}

/// The paper's Table III: two NFS clusters of 20 GB each.
///
/// | Type     | Utility | Price per GB·h | Capacity |
/// |----------|---------|----------------|----------|
/// | Standard | 0.8     | $1.11e-4       | 20 GB    |
/// | High     | 1.0     | $2.08e-4       | 20 GB    |
pub fn paper_nfs_clusters() -> Vec<NfsClusterSpec> {
    vec![
        NfsClusterSpec {
            name: "Standard".to_owned(),
            utility: 0.8,
            price_per_gb: Rate::per_hour(1.11e-4),
            capacity_bytes: 20_000_000_000,
        },
        NfsClusterSpec {
            name: "High".to_owned(),
            utility: 1.0,
            price_per_gb: Rate::per_hour(2.08e-4),
            capacity_bytes: 20_000_000_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_validate() {
        for c in paper_virtual_clusters() {
            c.validate().unwrap();
        }
        for c in paper_nfs_clusters() {
            c.validate().unwrap();
        }
    }

    #[test]
    fn paper_table_ii_values() {
        let vcs = paper_virtual_clusters();
        assert_eq!(vcs.len(), 3);
        assert_eq!(vcs[0].name, "Standard");
        assert_eq!(vcs[0].max_vms, 75);
        assert_eq!(vcs[1].max_vms, 30);
        assert_eq!(vcs[2].max_vms, 45);
        assert!((vcs[0].price.dollars_per_hour - 0.45).abs() < 1e-12);
        assert!((vcs[2].utility - 1.0).abs() < 1e-12);
        // Total fleet: 150 VMs.
        let total: usize = vcs.iter().map(|c| c.max_vms).sum();
        assert_eq!(total, 150);
    }

    #[test]
    fn paper_table_iii_values() {
        let nfs = paper_nfs_clusters();
        assert_eq!(nfs.len(), 2);
        assert!((nfs[0].price_per_gb.dollars_per_hour - 1.11e-4).abs() < 1e-15);
        assert!((nfs[1].price_per_gb.dollars_per_hour - 2.08e-4).abs() < 1e-15);
        assert_eq!(nfs[0].capacity_bytes, 20_000_000_000);
    }

    #[test]
    fn utility_per_dollar_ordering_matches_heuristic_intuition() {
        // Advanced (1.0/$0.80 = 1.25) beats Medium (0.8/$0.70 ~ 1.143)
        // and Standard (0.6/$0.45 ~ 1.333) tops both — the greedy heuristic
        // prefers Standard first, as in the paper's cost-oriented design.
        let vcs = paper_virtual_clusters();
        let std_upd = vcs[0].utility_per_dollar();
        let med_upd = vcs[1].utility_per_dollar();
        let adv_upd = vcs[2].utility_per_dollar();
        assert!(std_upd > adv_upd);
        assert!(adv_upd > med_upd);
    }

    #[test]
    fn nfs_standard_is_better_value_high_is_better_performance() {
        let nfs = paper_nfs_clusters();
        assert!(nfs[0].utility_per_dollar() > nfs[1].utility_per_dollar());
        assert!(nfs[1].utility > nfs[0].utility);
    }

    #[test]
    fn vm_bandwidth_is_10_mbps() {
        assert!((PAPER_VM_BANDWIDTH - 1.25e6).abs() < 1e-9);
    }

    #[test]
    fn storage_charge_scales_with_bytes_and_time() {
        let nfs = &paper_nfs_clusters()[0];
        let one_gb_hour = nfs.storage_charge(1_000_000_000, 3600.0);
        assert!((one_gb_hour.as_dollars() - 1.11e-4).abs() < 1e-12);
        let double = nfs.storage_charge(2_000_000_000, 3600.0);
        assert!((double.as_dollars() - 2.22e-4).abs() < 1e-12);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut c = paper_virtual_clusters()[0].clone();
        c.utility = 0.0;
        assert!(c.validate().is_err());
        let mut c = paper_virtual_clusters()[0].clone();
        c.price = Rate::per_hour(-1.0);
        assert!(c.validate().is_err());
        let mut n = paper_nfs_clusters()[0].clone();
        n.capacity_bytes = 0;
        assert!(n.validate().is_err());
    }
}
