//! IaaS cloud infrastructure model for the CloudMedia reproduction.
//!
//! The paper built its cloud from 100+ lab machines running Xen; this crate
//! models that infrastructure at the level the provisioning algorithms
//! interact with it — the functional modules of the paper's Fig. 1:
//!
//! - [`cluster`]: virtual clusters (Table II) and NFS clusters (Table III),
//! - [`vm`]: VM lifecycle with the measured ~25 s boot latency,
//! - [`scheduler`]: the VM scheduler (fleet convergence, parallel boot) and
//!   NFS scheduler (capacity-checked chunk placement),
//! - [`billing`]: usage-time metering (per VM-hour, per GB-hour),
//! - [`monitor`]: the VM Monitor (fleet activity and utilization),
//! - [`broker`]: the consumer-facing facade — SLA terms, resource change
//!   requests, time advancement,
//! - [`pricing`]: money and rates.
//!
//! # Example
//!
//! ```
//! use cloudmedia_cloud::broker::{Cloud, ResourceRequest};
//!
//! let mut cloud = Cloud::paper_default().unwrap();
//! cloud.submit_request(&ResourceRequest {
//!     vm_targets: vec![10, 0, 0],   // ten Standard VMs
//!     placement: None,
//! }).unwrap();
//! cloud.tick(25.0).unwrap();        // boot latency elapses
//! assert!(cloud.running_bandwidth() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod billing;
pub mod broker;
pub mod cluster;
mod error;
pub mod monitor;
pub mod pricing;
pub mod scheduler;
pub mod vm;

pub use error::CloudError;
