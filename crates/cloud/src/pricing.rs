//! Money and the usage-time charging model.
//!
//! The paper charges "by usage time, following the charging model of
//! leading commercial cloud providers such as Amazon EC2 and S3": VM rental
//! per instance-hour and NFS storage per byte-hour. Dollar amounts are kept
//! as `f64` internally (prices like $1.11e-4/GB·h make integer cents
//! unusable) and formatted through [`Money`] for reporting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A dollar amount.
///
/// Thin wrapper over `f64` dollars providing arithmetic, ordering helpers
/// and consistent display; constructed via [`Money::dollars`].
///
/// ```
/// use cloudmedia_cloud::pricing::Money;
///
/// let vm_hour = Money::dollars(0.45);
/// let two_hours = vm_hour * 2.0;
/// assert_eq!((vm_hour + two_hours).as_dollars(), 1.35);
/// assert_eq!(vm_hour.saturating_sub(two_hours), Money::ZERO);
/// assert_eq!(two_hours.to_string(), "$0.90");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Money(f64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0.0);

    /// Creates an amount from dollars.
    pub fn dollars(amount: f64) -> Self {
        Self(amount)
    }

    /// The amount in dollars.
    pub fn as_dollars(&self) -> f64 {
        self.0
    }

    /// True if the amount is negative beyond rounding noise.
    pub fn is_negative(&self) -> bool {
        self.0 < -1e-9
    }

    /// Saturating subtraction: never goes below zero.
    pub fn saturating_sub(self, other: Money) -> Money {
        Money((self.0 - other.0).max(0.0))
    }

    /// The larger of two amounts.
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Money) -> Money {
        Money(self.0.min(other.0))
    }
}

impl Add for Money {
    type Output = Money;

    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;

    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl Mul<f64> for Money {
    type Output = Money;

    fn mul(self, rhs: f64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        Money(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() < 0.01 && self.0 != 0.0 {
            // Sub-cent prices (e.g. storage per GB-hour) keep precision.
            write!(f, "${:.6}", self.0)
        } else {
            write!(f, "${:.2}", self.0)
        }
    }
}

/// Per-unit-time prices for the two billable resources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rate {
    /// Dollars charged per hour of usage of one unit.
    pub dollars_per_hour: f64,
}

impl Rate {
    /// Creates a rate from dollars per hour.
    pub fn per_hour(dollars: f64) -> Self {
        Self {
            dollars_per_hour: dollars,
        }
    }

    /// The charge for using `units` units over `seconds` seconds.
    pub fn charge(&self, units: f64, seconds: f64) -> Money {
        Money::dollars(self.dollars_per_hour * units * seconds / 3600.0)
    }
}

/// A per-volume price: dollars per gigabyte moved, the charging model
/// cloud providers apply to inter-region (egress) traffic. Used by the
/// federation layer to bill redirected streaming bytes.
///
/// ```
/// use cloudmedia_cloud::pricing::VolumeRate;
///
/// // $0.01/GB egress: a 15 MB chunk costs $0.00015 to redirect.
/// let egress = VolumeRate::per_gb(0.01);
/// assert!((egress.charge_bytes(15e6).as_dollars() - 1.5e-4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolumeRate {
    /// Dollars charged per decimal gigabyte (1e9 bytes) transferred.
    pub dollars_per_gb: f64,
}

impl VolumeRate {
    /// Creates a volume rate from dollars per gigabyte.
    pub fn per_gb(dollars: f64) -> Self {
        Self {
            dollars_per_gb: dollars,
        }
    }

    /// The charge for moving `bytes` bytes.
    pub fn charge_bytes(&self, bytes: f64) -> Money {
        Money::dollars(self.dollars_per_gb * bytes / 1e9)
    }

    /// This price expressed per *sustained bandwidth-hour*: the dollars
    /// charged for moving one byte/s continuously for one hour
    /// (`3600 bytes = 3.6e-6 GB`). This puts transfer prices in the same
    /// unit as VM rental per unit bandwidth, which is how the federation
    /// optimizer compares "serve locally" against "serve remotely and
    /// haul the bytes over".
    pub fn dollars_per_bps_hour(&self) -> f64 {
        self.dollars_per_gb * 3600.0 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let a = Money::dollars(1.5);
        let b = Money::dollars(0.25);
        assert_eq!((a + b).as_dollars(), 1.75);
        assert_eq!((a - b).as_dollars(), 1.25);
        assert_eq!((a * 2.0).as_dollars(), 3.0);
        let total: Money = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_dollars(), 2.0);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = Money::dollars(1.0);
        let b = Money::dollars(2.0);
        assert_eq!(a.saturating_sub(b), Money::ZERO);
        assert_eq!(b.saturating_sub(a).as_dollars(), 1.0);
    }

    #[test]
    fn display_formats_cents_and_subcents() {
        assert_eq!(Money::dollars(48.0).to_string(), "$48.00");
        assert_eq!(Money::dollars(0.000111).to_string(), "$0.000111");
        assert_eq!(Money::ZERO.to_string(), "$0.00");
    }

    #[test]
    fn rate_charges_prorated_time() {
        // Paper Table II: Standard VM at $0.45/hour.
        let r = Rate::per_hour(0.45);
        assert_eq!(r.charge(1.0, 3600.0).as_dollars(), 0.45);
        assert!((r.charge(2.0, 1800.0).as_dollars() - 0.45).abs() < 1e-12);
        assert_eq!(r.charge(0.0, 3600.0), Money::ZERO);
    }

    #[test]
    fn storage_rate_daily_cost_matches_paper_scale() {
        // Paper Sec. VI-C: NFS rental ~ $0.018 per day for the deployed
        // videos. 20 channels x 100 min x 50 KB/s = 6 GB; mixing the two
        // cluster prices lands near that order of magnitude.
        let gb = 6.0;
        let standard = Rate::per_hour(1.11e-4);
        let daily = standard.charge(gb, 86_400.0);
        assert!(
            daily.as_dollars() > 0.01 && daily.as_dollars() < 0.03,
            "daily {daily}"
        );
    }

    #[test]
    fn volume_rate_charges_per_gb_and_converts_to_bandwidth_hours() {
        let r = VolumeRate::per_gb(0.02);
        assert!((r.charge_bytes(5e9).as_dollars() - 0.10).abs() < 1e-12);
        assert_eq!(r.charge_bytes(0.0), Money::ZERO);
        // 1 byte/s for an hour is 3600 bytes = 3.6e-6 GB.
        assert!((r.dollars_per_bps_hour() - 0.02 * 3.6e-6).abs() < 1e-18);
    }

    #[test]
    fn negative_detection() {
        assert!(Money::dollars(-0.5).is_negative());
        assert!(!Money::ZERO.is_negative());
        assert!(!Money::dollars(1e-12).is_negative());
    }
}
