//! Usage-time billing.
//!
//! Meters VM rental (per instance-hour, per cluster price) and NFS storage
//! (per GB-hour, per cluster price) exactly as the paper's charging model
//! prescribes, by integrating usage between accrual points.

use serde::{Deserialize, Serialize};

use crate::cluster::{NfsClusterSpec, VirtualClusterSpec, GIB};
use crate::error::{invalid_param, CloudError};
use crate::pricing::Money;

/// A metered billing account for one cloud consumer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BillingMeter {
    vm_prices: Vec<f64>,
    storage_prices: Vec<f64>,
    last_accrual: f64,
    vm_cost: Money,
    storage_cost: Money,
    vm_cost_per_cluster: Vec<Money>,
    /// (time, incremental vm cost, incremental storage cost) per accrual.
    ledger: Vec<LedgerEntry>,
}

/// One accrual record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// End time of the accrual period.
    pub time: f64,
    /// VM cost accrued over the period.
    pub vm_cost: Money,
    /// Storage cost accrued over the period.
    pub storage_cost: Money,
}

impl BillingMeter {
    /// Creates a meter for the given cluster price books.
    ///
    /// # Errors
    ///
    /// Propagates spec validation failures.
    pub fn new(
        virtual_clusters: &[VirtualClusterSpec],
        nfs_clusters: &[NfsClusterSpec],
    ) -> Result<Self, CloudError> {
        for s in virtual_clusters {
            s.validate()?;
        }
        for s in nfs_clusters {
            s.validate()?;
        }
        Ok(Self {
            vm_prices: virtual_clusters
                .iter()
                .map(|s| s.price.dollars_per_hour)
                .collect(),
            storage_prices: nfs_clusters
                .iter()
                .map(|s| s.price_per_gb.dollars_per_hour)
                .collect(),
            last_accrual: 0.0,
            vm_cost: Money::ZERO,
            storage_cost: Money::ZERO,
            vm_cost_per_cluster: vec![Money::ZERO; virtual_clusters.len()],
            ledger: Vec::new(),
        })
    }

    /// Accrues charges for the period `(last_accrual, now]` given the
    /// billable VM counts and stored bytes that held over that period, and
    /// returns the incremental charge.
    ///
    /// # Errors
    ///
    /// Rejects out-of-order accruals and mismatched vector lengths.
    pub fn accrue(
        &mut self,
        now: f64,
        billable_vms: &[usize],
        stored_bytes: &[u64],
    ) -> Result<LedgerEntry, CloudError> {
        if now < self.last_accrual {
            return Err(CloudError::TimeWentBackwards {
                last: self.last_accrual,
                submitted: now,
            });
        }
        if billable_vms.len() != self.vm_prices.len() {
            return Err(invalid_param(
                "billable_vms",
                format!(
                    "expected {} clusters, got {}",
                    self.vm_prices.len(),
                    billable_vms.len()
                ),
            ));
        }
        if stored_bytes.len() != self.storage_prices.len() {
            return Err(invalid_param(
                "stored_bytes",
                format!(
                    "expected {} clusters, got {}",
                    self.storage_prices.len(),
                    stored_bytes.len()
                ),
            ));
        }
        let hours = (now - self.last_accrual) / 3600.0;
        let mut vm_inc = Money::ZERO;
        for (c, (&count, &price)) in billable_vms.iter().zip(&self.vm_prices).enumerate() {
            let inc = Money::dollars(count as f64 * price * hours);
            self.vm_cost_per_cluster[c] += inc;
            vm_inc += inc;
        }
        let storage_inc: Money = stored_bytes
            .iter()
            .zip(&self.storage_prices)
            .map(|(&bytes, &price)| Money::dollars(bytes as f64 / GIB * price * hours))
            .sum();
        self.vm_cost += vm_inc;
        self.storage_cost += storage_inc;
        self.last_accrual = now;
        let entry = LedgerEntry {
            time: now,
            vm_cost: vm_inc,
            storage_cost: storage_inc,
        };
        self.ledger.push(entry);
        Ok(entry)
    }

    /// Total VM rental cost to date.
    pub fn vm_cost(&self) -> Money {
        self.vm_cost
    }

    /// Total storage cost to date.
    pub fn storage_cost(&self) -> Money {
        self.storage_cost
    }

    /// Total cost to date.
    pub fn total_cost(&self) -> Money {
        self.vm_cost + self.storage_cost
    }

    /// VM cost per virtual cluster.
    pub fn vm_cost_per_cluster(&self) -> &[Money] {
        &self.vm_cost_per_cluster
    }

    /// The accrual ledger.
    pub fn ledger(&self) -> &[LedgerEntry] {
        &self.ledger
    }

    /// Time of the last accrual.
    pub fn last_accrual(&self) -> f64 {
        self.last_accrual
    }

    /// Cost accrued in the window `[from, to)`, summed from the ledger.
    pub fn cost_in_window(&self, from: f64, to: f64) -> Money {
        self.ledger
            .iter()
            .filter(|e| e.time > from && e.time <= to)
            .map(|e| e.vm_cost + e.storage_cost)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{paper_nfs_clusters, paper_virtual_clusters};

    fn meter() -> BillingMeter {
        BillingMeter::new(&paper_virtual_clusters(), &paper_nfs_clusters()).unwrap()
    }

    #[test]
    fn one_standard_vm_for_one_hour_costs_45_cents() {
        let mut m = meter();
        let e = m.accrue(3600.0, &[1, 0, 0], &[0, 0]).unwrap();
        assert!((e.vm_cost.as_dollars() - 0.45).abs() < 1e-12);
        assert_eq!(e.storage_cost, Money::ZERO);
        assert!((m.total_cost().as_dollars() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn mixed_fleet_hourly_cost() {
        // 10 Standard + 5 Medium + 2 Advanced = 4.5 + 3.5 + 1.6 = $9.6/h.
        let mut m = meter();
        let e = m.accrue(3600.0, &[10, 5, 2], &[0, 0]).unwrap();
        assert!((e.vm_cost.as_dollars() - 9.6).abs() < 1e-9);
        let per = m.vm_cost_per_cluster();
        assert!((per[0].as_dollars() - 4.5).abs() < 1e-9);
        assert!((per[1].as_dollars() - 3.5).abs() < 1e-9);
        assert!((per[2].as_dollars() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn storage_cost_per_gb_hour() {
        let mut m = meter();
        // 1 GB on Standard for 1 h = $1.11e-4; 2 GB on High = $4.16e-4.
        let e = m
            .accrue(3600.0, &[0, 0, 0], &[1_000_000_000, 2_000_000_000])
            .unwrap();
        assert!((e.storage_cost.as_dollars() - (1.11e-4 + 4.16e-4)).abs() < 1e-12);
    }

    #[test]
    fn accrual_is_prorated_by_time() {
        let mut m = meter();
        m.accrue(1800.0, &[2, 0, 0], &[0, 0]).unwrap();
        assert!(
            (m.vm_cost().as_dollars() - 0.45).abs() < 1e-12,
            "2 VMs x 0.5 h"
        );
        m.accrue(3600.0, &[4, 0, 0], &[0, 0]).unwrap();
        assert!((m.vm_cost().as_dollars() - (0.45 + 0.9)).abs() < 1e-12);
    }

    #[test]
    fn ledger_records_every_accrual_and_window_query_works() {
        let mut m = meter();
        m.accrue(3600.0, &[1, 0, 0], &[0, 0]).unwrap();
        m.accrue(7200.0, &[2, 0, 0], &[0, 0]).unwrap();
        m.accrue(10800.0, &[1, 0, 0], &[0, 0]).unwrap();
        assert_eq!(m.ledger().len(), 3);
        let w = m.cost_in_window(3600.0, 10800.0);
        assert!((w.as_dollars() - (0.9 + 0.45)).abs() < 1e-12);
    }

    #[test]
    fn rejects_time_backwards_and_bad_lengths() {
        let mut m = meter();
        m.accrue(100.0, &[0, 0, 0], &[0, 0]).unwrap();
        assert!(m.accrue(50.0, &[0, 0, 0], &[0, 0]).is_err());
        assert!(m.accrue(200.0, &[0, 0], &[0, 0]).is_err());
        assert!(m.accrue(200.0, &[0, 0, 0], &[0]).is_err());
    }

    #[test]
    fn zero_duration_accrual_is_free() {
        let mut m = meter();
        m.accrue(0.0, &[10, 10, 10], &[1_000_000_000, 0]).unwrap();
        assert_eq!(m.total_cost(), Money::ZERO);
    }
}
