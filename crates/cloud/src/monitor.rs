//! The VM Monitor (paper Fig. 1): "keeps track of all the VM instances
//! provisioned and monitors their activities and performance".
//!
//! Records per-cluster fleet states over time and summarizes utilization —
//! how much of the billed capacity actually ran, and how much of the
//! running capacity was used by traffic.

use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, CloudError};

/// One monitoring observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSample {
    /// Observation time, seconds.
    pub time: f64,
    /// Running instances per cluster.
    pub running: Vec<usize>,
    /// Billable (launched, not yet off) instances per cluster.
    pub billable: Vec<usize>,
    /// Bandwidth served to traffic at observation time, bytes per second.
    pub served_bandwidth: f64,
}

/// Utilization summary over a window of samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSummary {
    /// Mean fraction of billable instances that were running (boot and
    /// shutdown overheads push this below 1).
    pub running_over_billable: f64,
    /// Mean fraction of running bandwidth actually serving traffic.
    pub served_over_running: f64,
    /// Mean running instances across clusters (total).
    pub mean_running: f64,
}

/// Rolling monitor of VM fleet activity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmMonitor {
    clusters: usize,
    vm_bandwidth: f64,
    samples: Vec<MonitorSample>,
    max_samples: usize,
}

impl VmMonitor {
    /// Creates a monitor for `clusters` clusters of VMs with the given
    /// per-VM bandwidth, retaining at most `max_samples` observations
    /// (oldest evicted first).
    ///
    /// # Errors
    ///
    /// Rejects zero clusters, non-positive bandwidth, or zero retention.
    pub fn new(clusters: usize, vm_bandwidth: f64, max_samples: usize) -> Result<Self, CloudError> {
        if clusters == 0 {
            return Err(invalid_param("clusters", "must be positive"));
        }
        if !(vm_bandwidth.is_finite() && vm_bandwidth > 0.0) {
            return Err(invalid_param("vm_bandwidth", "must be positive"));
        }
        if max_samples == 0 {
            return Err(invalid_param("max_samples", "must be positive"));
        }
        Ok(Self {
            clusters,
            vm_bandwidth,
            samples: Vec::new(),
            max_samples,
        })
    }

    /// Records one observation.
    ///
    /// # Errors
    ///
    /// Rejects dimension mismatches and out-of-order times.
    pub fn record(
        &mut self,
        time: f64,
        running: Vec<usize>,
        billable: Vec<usize>,
        served_bandwidth: f64,
    ) -> Result<(), CloudError> {
        if running.len() != self.clusters || billable.len() != self.clusters {
            return Err(invalid_param("running", "cluster-count mismatch"));
        }
        if let Some(last) = self.samples.last() {
            if time < last.time {
                return Err(CloudError::TimeWentBackwards {
                    last: last.time,
                    submitted: time,
                });
            }
        }
        self.samples.push(MonitorSample {
            time,
            running,
            billable,
            served_bandwidth,
        });
        if self.samples.len() > self.max_samples {
            let excess = self.samples.len() - self.max_samples;
            self.samples.drain(0..excess);
        }
        Ok(())
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> &[MonitorSample] {
        &self.samples
    }

    /// Utilization summary over all retained samples; `None` if empty.
    pub fn summary(&self) -> Option<UtilizationSummary> {
        if self.samples.is_empty() {
            return None;
        }
        let mut rb = 0.0;
        let mut rb_n = 0usize;
        let mut sr = 0.0;
        let mut sr_n = 0usize;
        let mut total_running = 0.0;
        for s in &self.samples {
            let running: usize = s.running.iter().sum();
            let billable: usize = s.billable.iter().sum();
            total_running += running as f64;
            if billable > 0 {
                rb += running as f64 / billable as f64;
                rb_n += 1;
            }
            if running > 0 {
                sr += (s.served_bandwidth / (running as f64 * self.vm_bandwidth)).min(1.0);
                sr_n += 1;
            }
        }
        Some(UtilizationSummary {
            running_over_billable: if rb_n > 0 { rb / rb_n as f64 } else { 1.0 },
            served_over_running: if sr_n > 0 { sr / sr_n as f64 } else { 0.0 },
            mean_running: total_running / self.samples.len() as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> VmMonitor {
        VmMonitor::new(3, 1.25e6, 100).unwrap()
    }

    #[test]
    fn empty_monitor_has_no_summary() {
        assert!(monitor().summary().is_none());
    }

    #[test]
    fn summary_computes_utilizations() {
        let mut m = monitor();
        // 10 running of 10 billable, serving half the running bandwidth.
        m.record(0.0, vec![10, 0, 0], vec![10, 0, 0], 10.0 * 1.25e6 / 2.0)
            .unwrap();
        // 5 running of 10 billable (5 shutting down), fully used.
        m.record(10.0, vec![5, 0, 0], vec![10, 0, 0], 5.0 * 1.25e6)
            .unwrap();
        let s = m.summary().unwrap();
        assert!((s.running_over_billable - 0.75).abs() < 1e-12);
        assert!((s.served_over_running - 0.75).abs() < 1e-12);
        assert!((s.mean_running - 7.5).abs() < 1e-12);
    }

    #[test]
    fn served_fraction_is_capped_at_one() {
        let mut m = monitor();
        m.record(0.0, vec![1, 0, 0], vec![1, 0, 0], 99.0 * 1.25e6)
            .unwrap();
        assert!((m.summary().unwrap().served_over_running - 1.0).abs() < 1e-12);
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut m = VmMonitor::new(1, 1.0, 3).unwrap();
        for i in 0..5 {
            m.record(i as f64, vec![i], vec![i], 0.0).unwrap();
        }
        assert_eq!(m.samples().len(), 3);
        assert_eq!(m.samples()[0].time, 2.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(VmMonitor::new(0, 1.0, 10).is_err());
        assert!(VmMonitor::new(1, 0.0, 10).is_err());
        assert!(VmMonitor::new(1, 1.0, 0).is_err());
        let mut m = monitor();
        assert!(m.record(0.0, vec![1], vec![1, 0, 0], 0.0).is_err());
        m.record(10.0, vec![0, 0, 0], vec![0, 0, 0], 0.0).unwrap();
        assert!(m.record(5.0, vec![0, 0, 0], vec![0, 0, 0], 0.0).is_err());
    }

    #[test]
    fn idle_fleet_summary_is_sane() {
        let mut m = monitor();
        m.record(0.0, vec![0, 0, 0], vec![0, 0, 0], 0.0).unwrap();
        let s = m.summary().unwrap();
        assert_eq!(s.running_over_billable, 1.0);
        assert_eq!(s.served_over_running, 0.0);
        assert_eq!(s.mean_running, 0.0);
    }
}
