//! VM and NFS schedulers.
//!
//! These are the cloud-side "VM Scheduler" and "NFS Scheduler" modules of
//! the paper's Fig. 1: the VM scheduler converges each virtual cluster's
//! fleet toward the consumer's requested instance counts (launching and
//! shutting down in parallel); the NFS scheduler applies chunk placements
//! onto storage clusters subject to capacity.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::cluster::{NfsClusterSpec, VirtualClusterSpec};
use crate::error::CloudError;
use crate::vm::{VmInstance, DEFAULT_BOOT_SECONDS, DEFAULT_SHUTDOWN_SECONDS};

/// The VM scheduler: one fleet of instances per virtual cluster.
///
/// Fleet-wide aggregates (running/billable counts, the next lifecycle
/// transition time) are cached and refreshed only when instance states
/// can actually change, so the simulator's per-round `tick` calls cost
/// `O(clusters)` instead of `O(fleet)`: between a boot completing and the
/// next target change, every tick short-circuits.
#[derive(Debug, Clone)]
pub struct VmScheduler {
    specs: Vec<VirtualClusterSpec>,
    fleets: Vec<Vec<VmInstance>>,
    boot_seconds: f64,
    shutdown_seconds: f64,
    last_tick: f64,
    /// Cached billable (launched, not yet off) instances per cluster.
    billable_cache: Vec<usize>,
    /// Cached running instances per cluster.
    running_cache: Vec<usize>,
    /// Earliest future instant any instance changes lifecycle state
    /// (`ready_at` of a booting or `off_at` of a stopping instance);
    /// `+inf` when the fleet is quiescent.
    next_transition: f64,
    /// Earliest `off_at` among shutting-down instances; `+inf` if none.
    earliest_off: f64,
}

impl VmScheduler {
    /// Creates a scheduler with pre-deployed (off) instances per cluster.
    ///
    /// # Errors
    ///
    /// Propagates cluster validation failures.
    pub fn new(specs: Vec<VirtualClusterSpec>) -> Result<Self, CloudError> {
        for s in &specs {
            s.validate()?;
        }
        let fleets: Vec<Vec<VmInstance>> = specs
            .iter()
            .map(|s| (0..s.max_vms).map(VmInstance::new).collect())
            .collect();
        let clusters = specs.len();
        let mut scheduler = Self {
            specs,
            fleets,
            boot_seconds: DEFAULT_BOOT_SECONDS,
            shutdown_seconds: DEFAULT_SHUTDOWN_SECONDS,
            last_tick: 0.0,
            billable_cache: vec![0; clusters],
            running_cache: vec![0; clusters],
            next_transition: f64::INFINITY,
            earliest_off: f64::INFINITY,
        };
        scheduler.refresh_caches();
        Ok(scheduler)
    }

    /// Recomputes the cached fleet aggregates from instance states.
    fn refresh_caches(&mut self) {
        self.next_transition = f64::INFINITY;
        self.earliest_off = f64::INFINITY;
        for (c, fleet) in self.fleets.iter().enumerate() {
            let mut billable = 0;
            let mut running = 0;
            for vm in fleet {
                match vm.state {
                    crate::vm::VmState::Running { .. } => {
                        running += 1;
                        billable += 1;
                    }
                    crate::vm::VmState::Booting { ready_at } => {
                        billable += 1;
                        self.next_transition = self.next_transition.min(ready_at);
                    }
                    crate::vm::VmState::ShuttingDown { off_at } => {
                        billable += 1;
                        self.next_transition = self.next_transition.min(off_at);
                        self.earliest_off = self.earliest_off.min(off_at);
                    }
                    crate::vm::VmState::Off => {}
                }
            }
            self.billable_cache[c] = billable;
            self.running_cache[c] = running;
        }
    }

    /// Overrides the boot/shutdown latencies (defaults follow the paper:
    /// 25 s boot, ~10 s shutdown).
    pub fn with_latencies(mut self, boot_seconds: f64, shutdown_seconds: f64) -> Self {
        self.boot_seconds = boot_seconds;
        self.shutdown_seconds = shutdown_seconds;
        self.refresh_caches();
        self
    }

    /// The cluster specifications.
    pub fn specs(&self) -> &[VirtualClusterSpec] {
        &self.specs
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.specs.len()
    }

    /// Advances every instance's lifecycle to `now`.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::TimeWentBackwards`] if `now` precedes the
    /// previous tick.
    pub fn tick(&mut self, now: f64) -> Result<(), CloudError> {
        if now < self.last_tick {
            return Err(CloudError::TimeWentBackwards {
                last: self.last_tick,
                submitted: now,
            });
        }
        self.last_tick = now;
        // Quiescent fast path: no instance can change state before
        // `next_transition`, so the per-instance walk is skippable.
        if now < self.next_transition {
            return Ok(());
        }
        for fleet in &mut self.fleets {
            for vm in fleet {
                vm.tick(now);
            }
        }
        self.refresh_caches();
        Ok(())
    }

    /// Converges cluster `cluster` toward `target` active (booting or
    /// running) instances: launches the shortfall from off instances, or
    /// shuts down the excess. Launches happen in parallel (all at `now`),
    /// matching the paper's parallel-provisioning observation.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::UnknownCluster`] for a bad index and
    /// [`CloudError::InsufficientVms`] if `target` exceeds the fleet size
    /// (nothing is changed in that case).
    pub fn set_target(
        &mut self,
        cluster: usize,
        target: usize,
        now: f64,
    ) -> Result<(), CloudError> {
        let spec_max = self
            .specs
            .get(cluster)
            .ok_or(CloudError::UnknownCluster { cluster })?
            .max_vms;
        if target > spec_max {
            return Err(CloudError::InsufficientVms {
                cluster,
                requested: target,
                available: spec_max,
            });
        }
        let fleet = &mut self.fleets[cluster];
        let mut active: Vec<usize> = Vec::new();
        let mut off: Vec<usize> = Vec::new();
        for (i, vm) in fleet.iter().enumerate() {
            match vm.state {
                crate::vm::VmState::Running { .. } | crate::vm::VmState::Booting { .. } => {
                    active.push(i);
                }
                crate::vm::VmState::Off => off.push(i),
                crate::vm::VmState::ShuttingDown { .. } => {}
            }
        }
        if active.len() < target {
            let need = target - active.len();
            for &i in off.iter().take(need) {
                fleet[i].launch(now, self.boot_seconds);
            }
            // If off instances cannot cover the shortfall, instances still
            // shutting down will become available on later ticks; the
            // controller re-issues targets each interval so this converges.
        } else if active.len() > target {
            // Shut down booting instances first (they serve no traffic yet).
            let excess = active.len() - target;
            let (booting, running): (Vec<usize>, Vec<usize>) = active
                .into_iter()
                .partition(|&i| matches!(fleet[i].state, crate::vm::VmState::Booting { .. }));
            for &i in booting.iter().chain(running.iter()).take(excess) {
                fleet[i].shutdown(now, self.shutdown_seconds);
            }
        }
        self.refresh_caches();
        Ok(())
    }

    /// Number of running instances in a cluster.
    pub fn running(&self, cluster: usize) -> usize {
        self.running_cache[cluster]
    }

    /// Number of billable (launched, not yet off) instances in a cluster.
    pub fn billable(&self, cluster: usize) -> usize {
        self.billable_cache[cluster]
    }

    /// Total bandwidth currently served by a cluster, bytes per second.
    pub fn running_bandwidth(&self, cluster: usize) -> f64 {
        self.running(cluster) as f64 * self.specs[cluster].vm_bandwidth_bytes_per_sec
    }

    /// Total running bandwidth across all clusters, bytes per second.
    pub fn total_running_bandwidth(&self) -> f64 {
        (0..self.clusters())
            .map(|c| self.running_bandwidth(c))
            .sum()
    }

    /// Per-cluster billable instance counts; consumed by billing.
    pub fn billable_counts(&self) -> &[usize] {
        &self.billable_cache
    }

    /// Earliest time in `(after, until]` at which some instance stops
    /// being billable (a shutdown completes). Billing must accrue at each
    /// such point to charge usage-time exactly.
    pub fn next_billing_change(&self, after: f64, until: f64) -> Option<f64> {
        let earliest = self.earliest_off;
        (earliest > after && earliest <= until).then_some(earliest)
    }
}

/// Key identifying a chunk in the storage system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkKey {
    /// Channel the chunk belongs to.
    pub channel: usize,
    /// Chunk index within the channel.
    pub chunk: usize,
}

/// A placement decision: every chunk mapped to an NFS cluster.
pub type PlacementPlan = BTreeMap<ChunkKey, usize>;

/// The NFS scheduler: tracks which cluster stores each chunk and enforces
/// capacity.
#[derive(Debug, Clone)]
pub struct NfsScheduler {
    specs: Vec<NfsClusterSpec>,
    placement: BTreeMap<ChunkKey, usize>,
    used_bytes: Vec<u64>,
    chunk_bytes: u64,
}

impl NfsScheduler {
    /// Creates a scheduler over the given clusters storing chunks of
    /// uniform size `chunk_bytes` (the paper's `r · T0`).
    ///
    /// # Errors
    ///
    /// Propagates cluster validation failures; rejects zero chunk size.
    pub fn new(specs: Vec<NfsClusterSpec>, chunk_bytes: u64) -> Result<Self, CloudError> {
        for s in &specs {
            s.validate()?;
        }
        if chunk_bytes == 0 {
            return Err(crate::error::invalid_param(
                "chunk_bytes",
                "must be positive",
            ));
        }
        let used = vec![0; specs.len()];
        Ok(Self {
            specs,
            placement: BTreeMap::new(),
            used_bytes: used,
            chunk_bytes,
        })
    }

    /// The cluster specifications.
    pub fn specs(&self) -> &[NfsClusterSpec] {
        &self.specs
    }

    /// Size of each stored chunk in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Replaces the current placement with `plan` atomically: validates
    /// every target cluster and all capacities first, then swaps.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; the existing placement is kept
    /// unchanged on error.
    pub fn apply_placement(&mut self, plan: PlacementPlan) -> Result<(), CloudError> {
        let mut used = vec![0u64; self.specs.len()];
        for (&_key, &cluster) in &plan {
            let spec = self
                .specs
                .get(cluster)
                .ok_or(CloudError::UnknownCluster { cluster })?;
            used[cluster] += self.chunk_bytes;
            if used[cluster] > spec.capacity_bytes {
                return Err(CloudError::InsufficientStorage {
                    cluster,
                    requested_bytes: used[cluster],
                    available_bytes: spec.capacity_bytes,
                });
            }
        }
        self.placement = plan;
        self.used_bytes = used;
        Ok(())
    }

    /// The cluster currently storing `key`, if placed.
    pub fn location(&self, key: ChunkKey) -> Option<usize> {
        self.placement.get(&key).copied()
    }

    /// Bytes used on each cluster.
    pub fn used_bytes(&self) -> &[u64] {
        &self.used_bytes
    }

    /// Number of placed chunks.
    pub fn placed_chunks(&self) -> usize {
        self.placement.len()
    }

    /// Aggregate storage utility of the current placement weighted by the
    /// per-chunk demand map (the paper's objective
    /// `Σ u_f Δ_i x_if`). Chunks missing from `demand` count as zero.
    pub fn aggregate_utility(&self, demand: &BTreeMap<ChunkKey, f64>) -> f64 {
        self.placement
            .iter()
            .map(|(key, &cluster)| {
                self.specs[cluster].utility * demand.get(key).copied().unwrap_or(0.0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{paper_nfs_clusters, paper_virtual_clusters};

    fn scheduler() -> VmScheduler {
        VmScheduler::new(paper_virtual_clusters()).unwrap()
    }

    #[test]
    fn boot_latency_gates_running_count() {
        let mut s = scheduler();
        s.set_target(0, 10, 0.0).unwrap();
        s.tick(0.0).unwrap();
        assert_eq!(s.running(0), 0);
        assert_eq!(s.billable(0), 10, "billable from launch");
        s.tick(25.0).unwrap();
        assert_eq!(s.running(0), 10);
    }

    #[test]
    fn parallel_launch_all_ready_together() {
        // 40 VMs all boot in 25 s total, not serially.
        let mut s = scheduler();
        s.set_target(2, 40, 100.0).unwrap();
        s.tick(125.0).unwrap();
        assert_eq!(s.running(2), 40);
    }

    #[test]
    fn scale_down_shuts_down_excess() {
        let mut s = scheduler();
        s.set_target(0, 20, 0.0).unwrap();
        s.tick(25.0).unwrap();
        s.set_target(0, 5, 30.0).unwrap();
        assert_eq!(s.running(0), 5, "excess stop serving immediately");
        assert_eq!(s.billable(0), 20, "billed until fully off");
        s.tick(40.0).unwrap();
        assert_eq!(s.billable(0), 5);
    }

    #[test]
    fn booting_instances_shut_down_first() {
        let mut s = scheduler();
        s.set_target(0, 10, 0.0).unwrap();
        s.tick(25.0).unwrap(); // 10 running
        s.set_target(0, 15, 25.0).unwrap(); // 5 more booting
        s.set_target(0, 10, 30.0).unwrap(); // drop the 5 booting ones
        s.tick(30.0).unwrap();
        assert_eq!(s.running(0), 10, "running instances were preserved");
        s.tick(100.0).unwrap();
        assert_eq!(s.running(0), 10);
    }

    #[test]
    fn target_beyond_fleet_is_error() {
        let mut s = scheduler();
        let err = s.set_target(1, 31, 0.0).unwrap_err();
        assert!(matches!(
            err,
            CloudError::InsufficientVms {
                cluster: 1,
                requested: 31,
                available: 30
            }
        ));
    }

    #[test]
    fn unknown_cluster_is_error() {
        let mut s = scheduler();
        assert!(matches!(
            s.set_target(9, 1, 0.0),
            Err(CloudError::UnknownCluster { cluster: 9 })
        ));
    }

    #[test]
    fn time_backwards_is_error() {
        let mut s = scheduler();
        s.tick(100.0).unwrap();
        assert!(matches!(
            s.tick(50.0),
            Err(CloudError::TimeWentBackwards { .. })
        ));
    }

    #[test]
    fn running_bandwidth_scales_with_instances() {
        let mut s = scheduler();
        s.set_target(0, 4, 0.0).unwrap();
        s.tick(25.0).unwrap();
        assert!((s.running_bandwidth(0) - 4.0 * 1.25e6).abs() < 1e-6);
        assert!((s.total_running_bandwidth() - 4.0 * 1.25e6).abs() < 1e-6);
    }

    #[test]
    fn nfs_placement_respects_capacity() {
        // 15 MB chunks; 20 GB cluster fits 1333 chunks.
        let mut nfs = NfsScheduler::new(paper_nfs_clusters(), 15_000_000).unwrap();
        let mut plan = PlacementPlan::new();
        for i in 0..1000 {
            plan.insert(
                ChunkKey {
                    channel: 0,
                    chunk: i,
                },
                0,
            );
        }
        nfs.apply_placement(plan).unwrap();
        assert_eq!(nfs.placed_chunks(), 1000);
        assert_eq!(nfs.used_bytes()[0], 15_000_000_000);
        assert_eq!(nfs.used_bytes()[1], 0);
    }

    #[test]
    fn nfs_over_capacity_rejected_and_state_kept() {
        let mut nfs = NfsScheduler::new(paper_nfs_clusters(), 15_000_000).unwrap();
        let mut ok_plan = PlacementPlan::new();
        ok_plan.insert(
            ChunkKey {
                channel: 0,
                chunk: 0,
            },
            1,
        );
        nfs.apply_placement(ok_plan.clone()).unwrap();

        let mut bad = PlacementPlan::new();
        for i in 0..1400 {
            bad.insert(
                ChunkKey {
                    channel: 0,
                    chunk: i,
                },
                0,
            );
        }
        let err = nfs.apply_placement(bad).unwrap_err();
        assert!(matches!(
            err,
            CloudError::InsufficientStorage { cluster: 0, .. }
        ));
        // Old placement survives the failed apply.
        assert_eq!(
            nfs.location(ChunkKey {
                channel: 0,
                chunk: 0
            }),
            Some(1)
        );
        assert_eq!(nfs.placed_chunks(), 1);
    }

    #[test]
    fn nfs_unknown_cluster_rejected() {
        let mut nfs = NfsScheduler::new(paper_nfs_clusters(), 15_000_000).unwrap();
        let mut plan = PlacementPlan::new();
        plan.insert(
            ChunkKey {
                channel: 0,
                chunk: 0,
            },
            7,
        );
        assert!(matches!(
            nfs.apply_placement(plan),
            Err(CloudError::UnknownCluster { cluster: 7 })
        ));
    }

    #[test]
    fn aggregate_utility_weights_demand_by_cluster_utility() {
        let mut nfs = NfsScheduler::new(paper_nfs_clusters(), 15_000_000).unwrap();
        let k0 = ChunkKey {
            channel: 0,
            chunk: 0,
        };
        let k1 = ChunkKey {
            channel: 0,
            chunk: 1,
        };
        let mut plan = PlacementPlan::new();
        plan.insert(k0, 1); // High, utility 1.0
        plan.insert(k1, 0); // Standard, utility 0.8
        nfs.apply_placement(plan).unwrap();
        let mut demand = BTreeMap::new();
        demand.insert(k0, 10.0);
        demand.insert(k1, 5.0);
        let u = nfs.aggregate_utility(&demand);
        assert!((u - (1.0 * 10.0 + 0.8 * 5.0)).abs() < 1e-12);
    }
}
