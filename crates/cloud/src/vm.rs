//! Virtual machine lifecycle.
//!
//! The paper measures "around 25 seconds to turn on a VM, and even less
//! time to shut it down", with VMs launched and shut down in parallel so
//! provisioning latency stays at seconds. Instances here follow the
//! corresponding four-state lifecycle.

use serde::{Deserialize, Serialize};

/// Default boot latency, seconds (paper Sec. VI-C).
pub const DEFAULT_BOOT_SECONDS: f64 = 25.0;

/// Default shutdown latency, seconds ("even less time to shut it down").
pub const DEFAULT_SHUTDOWN_SECONDS: f64 = 10.0;

/// Lifecycle state of a VM instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VmState {
    /// Pre-deployed but powered off (the paper pre-deploys images in "off"
    /// state).
    Off,
    /// Booting; serves no traffic until `ready_at`.
    Booting {
        /// Absolute time the instance becomes `Running`.
        ready_at: f64,
    },
    /// Running and serving its full allocated bandwidth.
    Running {
        /// Absolute time the instance entered `Running`.
        since: f64,
    },
    /// Shutting down; already serving no traffic.
    ShuttingDown {
        /// Absolute time the instance becomes `Off`.
        off_at: f64,
    },
}

/// One VM instance inside a virtual cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmInstance {
    /// Identifier unique within the cluster.
    pub id: usize,
    /// Current lifecycle state.
    pub state: VmState,
}

impl VmInstance {
    /// Creates a powered-off instance.
    pub fn new(id: usize) -> Self {
        Self {
            id,
            state: VmState::Off,
        }
    }

    /// Advances lifecycle transitions up to time `now`.
    pub fn tick(&mut self, now: f64) {
        match self.state {
            VmState::Booting { ready_at } if now >= ready_at => {
                self.state = VmState::Running { since: ready_at };
            }
            VmState::ShuttingDown { off_at } if now >= off_at => {
                self.state = VmState::Off;
            }
            _ => {}
        }
    }

    /// Starts booting at `now`; no-op unless the instance is `Off`.
    pub fn launch(&mut self, now: f64, boot_seconds: f64) {
        if matches!(self.state, VmState::Off) {
            self.state = VmState::Booting {
                ready_at: now + boot_seconds,
            };
        }
    }

    /// Begins shutdown at `now`; no-op if already off or shutting down.
    /// A booting instance aborts its boot and powers down.
    pub fn shutdown(&mut self, now: f64, shutdown_seconds: f64) {
        match self.state {
            VmState::Running { .. } | VmState::Booting { .. } => {
                self.state = VmState::ShuttingDown {
                    off_at: now + shutdown_seconds,
                };
            }
            VmState::Off | VmState::ShuttingDown { .. } => {}
        }
    }

    /// True while the instance serves traffic.
    pub fn is_running(&self) -> bool {
        matches!(self.state, VmState::Running { .. })
    }

    /// True while the instance incurs rental charges (from launch until
    /// fully off, matching usage-time billing).
    pub fn is_billable(&self) -> bool {
        !matches!(self.state, VmState::Off)
    }

    /// True if the instance is available for a new launch.
    pub fn is_off(&self) -> bool {
        matches!(self.state, VmState::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_takes_the_configured_latency() {
        let mut vm = VmInstance::new(0);
        vm.launch(100.0, DEFAULT_BOOT_SECONDS);
        vm.tick(100.0);
        assert!(!vm.is_running(), "not running immediately");
        vm.tick(124.9);
        assert!(!vm.is_running(), "not running before 25 s elapse");
        vm.tick(125.0);
        assert!(vm.is_running(), "running exactly at ready time");
        assert_eq!(vm.state, VmState::Running { since: 125.0 });
    }

    #[test]
    fn shutdown_transitions_to_off() {
        let mut vm = VmInstance::new(1);
        vm.launch(0.0, 25.0);
        vm.tick(25.0);
        vm.shutdown(30.0, DEFAULT_SHUTDOWN_SECONDS);
        assert!(!vm.is_running(), "serves no traffic once shutting down");
        assert!(vm.is_billable(), "still billed while shutting down");
        vm.tick(40.0);
        assert!(vm.is_off());
        assert!(!vm.is_billable());
    }

    #[test]
    fn launch_is_idempotent_while_not_off() {
        let mut vm = VmInstance::new(2);
        vm.launch(0.0, 25.0);
        let s = vm.state;
        vm.launch(5.0, 25.0);
        assert_eq!(vm.state, s, "second launch ignored");
    }

    #[test]
    fn booting_instance_can_be_aborted() {
        let mut vm = VmInstance::new(3);
        vm.launch(0.0, 25.0);
        vm.shutdown(10.0, 10.0);
        assert_eq!(vm.state, VmState::ShuttingDown { off_at: 20.0 });
        vm.tick(20.0);
        assert!(vm.is_off());
    }

    #[test]
    fn shutdown_when_off_is_noop() {
        let mut vm = VmInstance::new(4);
        vm.shutdown(0.0, 10.0);
        assert!(vm.is_off());
    }

    #[test]
    fn billable_from_launch() {
        let mut vm = VmInstance::new(5);
        assert!(!vm.is_billable());
        vm.launch(0.0, 25.0);
        assert!(vm.is_billable(), "billing starts at launch, not at ready");
    }
}
