//! Error types for the cloud infrastructure model.

use std::error::Error;
use std::fmt;

/// Errors produced by the cloud model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CloudError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A request referenced an unknown virtual or NFS cluster.
    UnknownCluster {
        /// The cluster identifier that failed to resolve.
        cluster: usize,
    },
    /// A VM request exceeded a cluster's available instances.
    InsufficientVms {
        /// Cluster the request targeted.
        cluster: usize,
        /// Instances requested.
        requested: usize,
        /// Instances the cluster can provision.
        available: usize,
    },
    /// A placement exceeded an NFS cluster's storage capacity.
    InsufficientStorage {
        /// Cluster the placement targeted.
        cluster: usize,
        /// Bytes requested.
        requested_bytes: u64,
        /// Bytes available.
        available_bytes: u64,
    },
    /// Simulated time moved backwards.
    TimeWentBackwards {
        /// The clock value last observed.
        last: f64,
        /// The (earlier) time just submitted.
        submitted: f64,
    },
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            CloudError::UnknownCluster { cluster } => {
                write!(f, "unknown cluster {cluster}")
            }
            CloudError::InsufficientVms {
                cluster,
                requested,
                available,
            } => write!(
                f,
                "cluster {cluster} cannot provision {requested} VMs (only {available} available)"
            ),
            CloudError::InsufficientStorage {
                cluster,
                requested_bytes,
                available_bytes,
            } => {
                write!(
                    f,
                    "NFS cluster {cluster} cannot store {requested_bytes} bytes \
                     (only {available_bytes} available)"
                )
            }
            CloudError::TimeWentBackwards { last, submitted } => {
                write!(f, "time went backwards: {submitted} < {last}")
            }
        }
    }
}

impl Error for CloudError {}

pub(crate) fn invalid_param(name: &'static str, message: impl Into<String>) -> CloudError {
    CloudError::InvalidParameter {
        name,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(invalid_param("price", "negative")
            .to_string()
            .contains("price"));
        assert!(CloudError::UnknownCluster { cluster: 3 }
            .to_string()
            .contains('3'));
        let e = CloudError::InsufficientVms {
            cluster: 1,
            requested: 80,
            available: 75,
        };
        assert!(e.to_string().contains("80"));
        let e = CloudError::InsufficientStorage {
            cluster: 0,
            requested_bytes: 10,
            available_bytes: 5,
        };
        assert!(e.to_string().contains("10"));
        let e = CloudError::TimeWentBackwards {
            last: 5.0,
            submitted: 1.0,
        };
        assert!(e.to_string().contains("backwards"));
    }
}
