//! The consumer-facing cloud facade: broker, SLA negotiation, request
//! handling.
//!
//! This ties together the functional modules of the paper's Fig. 1: the
//! *broker* is the interface through which the VoD provider submits
//! requests; the *SLA negotiator* publishes prices, QoS (per-VM bandwidth)
//! and current availability; the *request monitor* forwards accepted
//! requests to the VM and NFS schedulers; billing meters usage over time.

use cloudmedia_telemetry::GlobalCounter;
use serde::{Deserialize, Serialize};

use crate::billing::BillingMeter;
use crate::cluster::{NfsClusterSpec, VirtualClusterSpec};
use crate::error::CloudError;
use crate::scheduler::{NfsScheduler, PlacementPlan, VmScheduler};

/// Process-wide count of resource requests submitted through any broker
/// (telemetry only — read as before/after deltas by the simulators; never
/// fed back into scheduling decisions).
pub static BROKER_SUBMITS: GlobalCounter = GlobalCounter::new();

/// SLA terms the negotiator publishes to a consumer: the price book and
/// current availability of each cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaTerms {
    /// Virtual cluster specifications (prices, utilities, fleet sizes,
    /// per-VM bandwidth QoS).
    pub virtual_clusters: Vec<VirtualClusterSpec>,
    /// NFS cluster specifications (prices, utilities, capacities).
    pub nfs_clusters: Vec<NfsClusterSpec>,
}

impl SlaTerms {
    /// The cheapest marginal price of cloud bandwidth under these terms,
    /// in dollars per (byte/s)·hour: the minimum over virtual clusters of
    /// `price / vm_bandwidth`. This is the unit price the federation
    /// optimizer uses to compare sites (the integer VM plan mixes
    /// clusters, but the greedy heuristic fills the best-value cluster
    /// first, so the cheapest ratio is the marginal one).
    pub fn bandwidth_price_per_bps_hour(&self) -> f64 {
        self.virtual_clusters
            .iter()
            .map(|c| c.price.dollars_per_hour / c.vm_bandwidth_bytes_per_sec)
            .fold(f64::INFINITY, f64::min)
    }

    /// A copy of these terms with every VM rental price multiplied by
    /// `factor` — the price book of a regional site whose market differs
    /// from the reference region's. Storage prices are left untouched
    /// (NFS cost is negligible at the paper's scale).
    pub fn with_vm_price_factor(&self, factor: f64) -> Self {
        Self {
            virtual_clusters: scale_vm_prices(&self.virtual_clusters, factor),
            nfs_clusters: self.nfs_clusters.clone(),
        }
    }
}

/// Virtual cluster specs with rental prices multiplied by `factor`;
/// shared by [`SlaTerms::with_vm_price_factor`] and the federated
/// simulator (which builds each regional [`Cloud`] from scaled specs so
/// billing happens at the site's own prices).
pub fn scale_vm_prices(specs: &[VirtualClusterSpec], factor: f64) -> Vec<VirtualClusterSpec> {
    specs
        .iter()
        .map(|c| VirtualClusterSpec {
            price: crate::pricing::Rate::per_hour(c.price.dollars_per_hour * factor),
            ..c.clone()
        })
        .collect()
}

/// Virtual cluster specs with fleet sizes (`max_vms`) multiplied by
/// `factor` (rounded up, so a factor of 1.0 is the identity). The
/// scale-out simulations use this to grow the paper's Table II testbed —
/// 150 VMs sized for ~2500 viewers — in proportion to the simulated
/// population, keeping per-VM bandwidth, utilities, and prices exactly
/// the paper's.
pub fn scale_fleet_capacity(specs: &[VirtualClusterSpec], factor: f64) -> Vec<VirtualClusterSpec> {
    specs
        .iter()
        .map(|c| VirtualClusterSpec {
            max_vms: (c.max_vms as f64 * factor).ceil() as usize,
            ..c.clone()
        })
        .collect()
}

/// NFS cluster specs with storage capacities multiplied by `factor`
/// (the scale-out analogue of [`scale_fleet_capacity`] for Table III).
pub fn scale_nfs_capacity(
    specs: &[crate::cluster::NfsClusterSpec],
    factor: f64,
) -> Vec<crate::cluster::NfsClusterSpec> {
    specs
        .iter()
        .map(|c| crate::cluster::NfsClusterSpec {
            capacity_bytes: (c.capacity_bytes as f64 * factor).ceil() as u64,
            ..c.clone()
        })
        .collect()
}

/// A resource change request submitted via the broker at the start of a
/// provisioning interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceRequest {
    /// Target number of active VMs per virtual cluster.
    pub vm_targets: Vec<usize>,
    /// Optional new chunk placement (omitted when demand has not shifted
    /// enough to justify re-placement, per paper Sec. V-B).
    pub placement: Option<PlacementPlan>,
}

/// Deterministic retry policy for broker submissions: exponential backoff
/// with a hard cap, measured in *simulated* seconds. The sim's rejections
/// are deterministic, so retries exist to model the control-plane latency
/// a real provider pays before giving up and degrading — the backoff total
/// is charged to the resilience report, not to the data plane.
///
/// ```
/// use cloudmedia_cloud::broker::RetryPolicy;
/// let p = RetryPolicy::paper_default();
/// // Backoff doubles after each failed attempt, capped at the max.
/// assert_eq!(p.backoff_after(1), 5.0);
/// assert_eq!(p.backoff_after(2), 10.0);
/// assert_eq!(p.backoff_after(3), 20.0);
/// assert_eq!(p.backoff_after(10), p.max_backoff_seconds);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total submission attempts before degrading (>= 1).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt, seconds.
    pub base_backoff_seconds: f64,
    /// Ceiling on any single backoff, seconds.
    pub max_backoff_seconds: f64,
}

impl RetryPolicy {
    /// Four attempts, 5 s base backoff, 60 s cap — well under the round
    /// length × attempt budget, so a degraded plan still lands within the
    /// provisioning boundary it was computed for.
    pub fn paper_default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_seconds: 5.0,
            max_backoff_seconds: 60.0,
        }
    }

    /// Backoff scheduled after the `failures`-th consecutive failure
    /// (1-based): `base × 2^(failures-1)`, capped.
    pub fn backoff_after(&self, failures: u32) -> f64 {
        let exp = failures.saturating_sub(1).min(52);
        (self.base_backoff_seconds * (1u64 << exp) as f64).min(self.max_backoff_seconds)
    }

    fn validate(&self) -> Result<(), CloudError> {
        if self.max_attempts == 0 {
            return Err(crate::error::invalid_param(
                "max_attempts",
                "must be at least 1",
            ));
        }
        if !(self.base_backoff_seconds.is_finite() && self.base_backoff_seconds >= 0.0) {
            return Err(crate::error::invalid_param(
                "base_backoff_seconds",
                "must be non-negative",
            ));
        }
        if !(self.max_backoff_seconds.is_finite() && self.max_backoff_seconds >= 0.0) {
            return Err(crate::error::invalid_param(
                "max_backoff_seconds",
                "must be non-negative",
            ));
        }
        Ok(())
    }
}

/// What [`Cloud::submit_with_retry`] actually did: how many attempts it
/// took, how much simulated backoff accrued, and whether the request had
/// to be degraded (VM targets clamped to current availability) to land.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SubmitReceipt {
    /// Submission attempts made (1 = accepted first try).
    pub attempts: u32,
    /// Total exponential backoff accrued across failed attempts, seconds.
    pub backoff_seconds: f64,
    /// True when the accepted request is the clamped (degraded) one.
    pub degraded: bool,
    /// The VM targets that were actually accepted.
    pub vm_targets: Vec<usize>,
}

/// The cloud provider: schedulers plus billing behind a broker interface.
#[derive(Debug)]
pub struct Cloud {
    vms: VmScheduler,
    nfs: NfsScheduler,
    billing: BillingMeter,
    clock: f64,
    /// Per-cluster availability cap (≤ the spec's `max_vms`). Normally
    /// equal to the fleet size; a correlated host failure lowers it until
    /// the repair completes, making over-cap submissions rejectable (and
    /// therefore retryable/degradable) instead of silently satisfiable.
    available: Vec<usize>,
}

impl Cloud {
    /// Builds a cloud from cluster specifications.
    ///
    /// # Errors
    ///
    /// Propagates specification validation failures.
    pub fn new(
        virtual_clusters: Vec<VirtualClusterSpec>,
        nfs_clusters: Vec<NfsClusterSpec>,
        chunk_bytes: u64,
    ) -> Result<Self, CloudError> {
        let billing = BillingMeter::new(&virtual_clusters, &nfs_clusters)?;
        let vms = VmScheduler::new(virtual_clusters)?;
        let nfs = NfsScheduler::new(nfs_clusters, chunk_bytes)?;
        let available = vms.specs().iter().map(|s| s.max_vms).collect();
        Ok(Self {
            vms,
            nfs,
            billing,
            clock: 0.0,
            available,
        })
    }

    /// The paper's experimental cloud: Table II VM clusters, Table III NFS
    /// clusters, 15 MB chunks.
    ///
    /// # Errors
    ///
    /// Never fails for the paper constants; the `Result` mirrors
    /// [`Cloud::new`].
    pub fn paper_default() -> Result<Self, CloudError> {
        Self::new(
            crate::cluster::paper_virtual_clusters(),
            crate::cluster::paper_nfs_clusters(),
            15_000_000,
        )
    }

    /// Overrides VM boot/shutdown latencies.
    pub fn with_vm_latencies(mut self, boot_seconds: f64, shutdown_seconds: f64) -> Self {
        self.vms = self.vms.with_latencies(boot_seconds, shutdown_seconds);
        self
    }

    /// The SLA negotiator: current terms for the consumer.
    pub fn sla_terms(&self) -> SlaTerms {
        SlaTerms {
            virtual_clusters: self.vms.specs().to_vec(),
            nfs_clusters: self.nfs.specs().to_vec(),
        }
    }

    /// Advances simulated time: progresses VM lifecycles and accrues
    /// billing for the elapsed period. Billing is exact regardless of tick
    /// granularity: the period is split at every shutdown completion so an
    /// instance is charged precisely from launch until fully off.
    ///
    /// # Errors
    ///
    /// Rejects time moving backwards.
    pub fn tick(&mut self, now: f64) -> Result<(), CloudError> {
        if now < self.clock {
            return Err(CloudError::TimeWentBackwards {
                last: self.clock,
                submitted: now,
            });
        }
        let mut cursor = self.clock;
        while let Some(change) = self.vms.next_billing_change(cursor, now) {
            self.billing
                .accrue(change, self.vms.billable_counts(), self.nfs.used_bytes())?;
            self.vms.tick(change)?;
            cursor = change;
        }
        self.billing
            .accrue(now, self.vms.billable_counts(), self.nfs.used_bytes())?;
        self.vms.tick(now)?;
        self.clock = now;
        Ok(())
    }

    /// Submits a resource request through the broker (the request monitor
    /// forwards it to the schedulers). Effective immediately at the current
    /// clock; VM changes take their boot/shutdown latency to materialize.
    ///
    /// # Errors
    ///
    /// Returns the first scheduler rejection; on VM-target rejection no
    /// placement change is applied either.
    pub fn submit_request(&mut self, request: &ResourceRequest) -> Result<(), CloudError> {
        BROKER_SUBMITS.inc();
        if request.vm_targets.len() != self.vms.clusters() {
            return Err(crate::error::invalid_param(
                "vm_targets",
                format!(
                    "expected {} clusters, got {}",
                    self.vms.clusters(),
                    request.vm_targets.len()
                ),
            ));
        }
        // Validate all VM targets before mutating anything.
        for (cluster, &target) in request.vm_targets.iter().enumerate() {
            let max = self.capacity_limit(cluster);
            if target > max {
                return Err(CloudError::InsufficientVms {
                    cluster,
                    requested: target,
                    available: max,
                });
            }
        }
        for (cluster, &target) in request.vm_targets.iter().enumerate() {
            self.vms.set_target(cluster, target, self.clock)?;
        }
        if let Some(plan) = &request.placement {
            self.nfs.apply_placement(plan.clone())?;
        }
        Ok(())
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// The VM scheduler (read access for monitoring).
    pub fn vm_scheduler(&self) -> &VmScheduler {
        &self.vms
    }

    /// The NFS scheduler (read access for monitoring).
    pub fn nfs_scheduler(&self) -> &NfsScheduler {
        &self.nfs
    }

    /// The billing meter.
    pub fn billing(&self) -> &BillingMeter {
        &self.billing
    }

    /// Total bandwidth currently served by running VMs, bytes/second.
    pub fn running_bandwidth(&self) -> f64 {
        self.vms.total_running_bandwidth()
    }

    /// The number of VMs cluster `cluster` can currently host: the spec's
    /// fleet size, lowered by any outstanding availability cap.
    pub fn capacity_limit(&self, cluster: usize) -> usize {
        self.vms.specs()[cluster]
            .max_vms
            .min(self.available[cluster])
    }

    /// Current per-cluster availability caps.
    pub fn availability(&self) -> &[usize] {
        &self.available
    }

    /// Caps each cluster's hostable VM count (clamped to the spec's
    /// `max_vms`) — the fault plane's handle for correlated host loss.
    /// Running instances above a lowered cap are not killed here; the
    /// caller decides which survive and submits the reduced targets.
    ///
    /// # Errors
    ///
    /// Rejects a cap vector whose length does not match the cluster count.
    pub fn set_availability(&mut self, caps: &[usize]) -> Result<(), CloudError> {
        if caps.len() != self.vms.clusters() {
            return Err(crate::error::invalid_param(
                "caps",
                format!(
                    "expected {} clusters, got {}",
                    self.vms.clusters(),
                    caps.len()
                ),
            ));
        }
        for (cluster, &cap) in caps.iter().enumerate() {
            self.available[cluster] = cap.min(self.vms.specs()[cluster].max_vms);
        }
        Ok(())
    }

    /// Restores every cluster's availability to its full fleet size (the
    /// repair completing after a correlated failure).
    pub fn restore_full_availability(&mut self) {
        let full: Vec<usize> = self.vms.specs().iter().map(|s| s.max_vms).collect();
        self.available = full;
    }

    /// Submits a request under `policy`: retries `InsufficientVms`
    /// rejections with exponential backoff, and after the final attempt
    /// *degrades* — clamps every VM target to the cluster's current
    /// capacity limit and submits that instead, so a post-fault plan that
    /// exceeds the surviving fleet still lands (at reduced capacity)
    /// rather than leaving the previous interval's targets in place.
    ///
    /// Rejections in this model are deterministic, so the retries always
    /// observe the same answer; the accrued backoff is reported in the
    /// receipt as control-plane latency rather than being applied to the
    /// simulated clock.
    ///
    /// # Errors
    ///
    /// Propagates validation errors other than `InsufficientVms`, and any
    /// failure of the final degraded submission.
    pub fn submit_with_retry(
        &mut self,
        request: &ResourceRequest,
        policy: &RetryPolicy,
    ) -> Result<SubmitReceipt, CloudError> {
        policy.validate()?;
        let mut attempts = 0u32;
        let mut backoff = 0.0;
        loop {
            attempts += 1;
            match self.submit_request(request) {
                Ok(()) => {
                    return Ok(SubmitReceipt {
                        attempts,
                        backoff_seconds: backoff,
                        degraded: false,
                        vm_targets: request.vm_targets.clone(),
                    });
                }
                Err(CloudError::InsufficientVms { .. }) if attempts < policy.max_attempts => {
                    backoff += policy.backoff_after(attempts);
                }
                Err(CloudError::InsufficientVms { .. }) => break,
                Err(e) => return Err(e),
            }
        }
        let clamped: Vec<usize> = request
            .vm_targets
            .iter()
            .enumerate()
            .map(|(cluster, &target)| target.min(self.capacity_limit(cluster)))
            .collect();
        self.submit_request(&ResourceRequest {
            vm_targets: clamped.clone(),
            placement: request.placement.clone(),
        })?;
        Ok(SubmitReceipt {
            attempts,
            backoff_seconds: backoff,
            degraded: true,
            vm_targets: clamped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Money;
    use crate::scheduler::ChunkKey;

    #[test]
    fn sla_terms_reflect_paper_tables() {
        let cloud = Cloud::paper_default().unwrap();
        let terms = cloud.sla_terms();
        assert_eq!(terms.virtual_clusters.len(), 3);
        assert_eq!(terms.nfs_clusters.len(), 2);
    }

    #[test]
    fn end_to_end_request_provision_bill() {
        let mut cloud = Cloud::paper_default().unwrap();
        let mut placement = PlacementPlan::new();
        for i in 0..10 {
            placement.insert(
                ChunkKey {
                    channel: 0,
                    chunk: i,
                },
                1,
            );
        }
        cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![10, 0, 0],
                placement: Some(placement),
            })
            .unwrap();
        // After boot latency the bandwidth is online.
        cloud.tick(25.0).unwrap();
        assert!((cloud.running_bandwidth() - 10.0 * 1.25e6).abs() < 1.0);
        // One hour of 10 Standard VMs: $4.50 (+ tiny storage).
        cloud.tick(3625.0).unwrap();
        let vm_cost = cloud.billing().vm_cost().as_dollars();
        assert!((vm_cost - 0.45 * 10.0 * 3625.0 / 3600.0).abs() < 1e-9);
        let storage = cloud.billing().storage_cost().as_dollars();
        // 150 MB on High for ~1 h ~ 0.15 GB * 2.08e-4.
        assert!(storage > 0.0 && storage < 1e-3, "storage {storage}");
    }

    #[test]
    fn provisioning_latency_is_seconds_scale() {
        // The paper's point: parallel boot means even large scale-ups are
        // ready within one boot latency.
        let mut cloud = Cloud::paper_default().unwrap();
        cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![75, 30, 45],
                placement: None,
            })
            .unwrap();
        cloud.tick(25.0).unwrap();
        let total = 75.0 + 30.0 + 45.0;
        assert!((cloud.running_bandwidth() - total * 1.25e6).abs() < 1.0);
    }

    #[test]
    fn rejected_vm_target_applies_nothing() {
        let mut cloud = Cloud::paper_default().unwrap();
        let mut placement = PlacementPlan::new();
        placement.insert(
            ChunkKey {
                channel: 0,
                chunk: 0,
            },
            0,
        );
        let err = cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![10, 99, 0], // 99 > 30 Medium VMs
                placement: Some(placement),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            CloudError::InsufficientVms { cluster: 1, .. }
        ));
        cloud.tick(60.0).unwrap();
        assert_eq!(cloud.running_bandwidth(), 0.0, "no VMs launched");
        assert_eq!(
            cloud.nfs_scheduler().placed_chunks(),
            0,
            "no placement applied"
        );
    }

    #[test]
    fn scale_down_stops_billing_after_shutdown() {
        let mut cloud = Cloud::paper_default().unwrap();
        cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![20, 0, 0],
                placement: None,
            })
            .unwrap();
        cloud.tick(3600.0).unwrap();
        cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![0, 0, 0],
                placement: None,
            })
            .unwrap();
        cloud.tick(3610.0).unwrap(); // shutdown completes
        let cost_before = cloud.billing().total_cost();
        cloud.tick(7200.0).unwrap();
        let cost_after = cloud.billing().total_cost();
        assert!(
            (cost_after - cost_before).as_dollars() < 1e-9,
            "no further charges"
        );
    }

    #[test]
    fn zero_state_is_free() {
        let mut cloud = Cloud::paper_default().unwrap();
        cloud.tick(86_400.0).unwrap();
        assert_eq!(cloud.billing().total_cost(), Money::ZERO);
    }

    #[test]
    fn bandwidth_price_is_the_cheapest_cluster_ratio() {
        let sla = Cloud::paper_default().unwrap().sla_terms();
        // Paper Table II: Standard $0.45/h at 1.25 MB/s is the cheapest
        // ratio (3.6e-7 $/Bps·h); Medium and Advanced cost more per unit.
        assert!((sla.bandwidth_price_per_bps_hour() - 0.45 / 1.25e6).abs() < 1e-15);
    }

    #[test]
    fn availability_cap_rejects_then_degrade_clamps() {
        let mut cloud = Cloud::paper_default().unwrap();
        // Paper fleet: 75/30/45. Halve availability of cluster 0.
        cloud.set_availability(&[37, 30, 45]).unwrap();
        let request = ResourceRequest {
            vm_targets: vec![50, 0, 0],
            placement: None,
        };
        let err = cloud.submit_request(&request).unwrap_err();
        assert!(matches!(
            err,
            CloudError::InsufficientVms {
                cluster: 0,
                available: 37,
                ..
            }
        ));
        let receipt = cloud
            .submit_with_retry(&request, &RetryPolicy::paper_default())
            .unwrap();
        assert_eq!(receipt.attempts, 4);
        assert!(receipt.degraded);
        assert_eq!(receipt.vm_targets, vec![37, 0, 0]);
        // 5 + 10 + 20 seconds of exponential backoff across 3 failures.
        assert!((receipt.backoff_seconds - 35.0).abs() < 1e-12);
        // Repair restores the full fleet; the same request now lands.
        cloud.restore_full_availability();
        let receipt = cloud
            .submit_with_retry(&request, &RetryPolicy::paper_default())
            .unwrap();
        assert_eq!(receipt.attempts, 1);
        assert!(!receipt.degraded);
        assert_eq!(receipt.backoff_seconds, 0.0);
    }

    #[test]
    fn retry_does_not_mask_other_errors() {
        let mut cloud = Cloud::paper_default().unwrap();
        let err = cloud
            .submit_with_retry(
                &ResourceRequest {
                    vm_targets: vec![1, 1], // wrong cluster count
                    placement: None,
                },
                &RetryPolicy::paper_default(),
            )
            .unwrap_err();
        assert!(matches!(err, CloudError::InvalidParameter { .. }));
    }

    #[test]
    fn backoff_caps_and_validates() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_seconds: 3.0,
            max_backoff_seconds: 10.0,
        };
        assert_eq!(p.backoff_after(1), 3.0);
        assert_eq!(p.backoff_after(2), 6.0);
        assert_eq!(p.backoff_after(3), 10.0, "capped");
        let mut cloud = Cloud::paper_default().unwrap();
        let bad = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::paper_default()
        };
        assert!(cloud
            .submit_with_retry(
                &ResourceRequest {
                    vm_targets: vec![0, 0, 0],
                    placement: None
                },
                &bad
            )
            .is_err());
    }

    #[test]
    fn vm_price_factor_scales_rental_only() {
        let sla = Cloud::paper_default().unwrap().sla_terms();
        let scaled = sla.with_vm_price_factor(1.5);
        for (a, b) in sla.virtual_clusters.iter().zip(&scaled.virtual_clusters) {
            assert!((b.price.dollars_per_hour - 1.5 * a.price.dollars_per_hour).abs() < 1e-12);
            assert_eq!(a.max_vms, b.max_vms);
            assert_eq!(a.vm_bandwidth_bytes_per_sec, b.vm_bandwidth_bytes_per_sec);
        }
        assert_eq!(sla.nfs_clusters, scaled.nfs_clusters);
        assert!(
            (scaled.bandwidth_price_per_bps_hour() - 1.5 * sla.bandwidth_price_per_bps_hour())
                .abs()
                < 1e-15
        );
    }
}
