//! The consumer-facing cloud facade: broker, SLA negotiation, request
//! handling.
//!
//! This ties together the functional modules of the paper's Fig. 1: the
//! *broker* is the interface through which the VoD provider submits
//! requests; the *SLA negotiator* publishes prices, QoS (per-VM bandwidth)
//! and current availability; the *request monitor* forwards accepted
//! requests to the VM and NFS schedulers; billing meters usage over time.

use serde::{Deserialize, Serialize};

use crate::billing::BillingMeter;
use crate::cluster::{NfsClusterSpec, VirtualClusterSpec};
use crate::error::CloudError;
use crate::scheduler::{NfsScheduler, PlacementPlan, VmScheduler};

/// SLA terms the negotiator publishes to a consumer: the price book and
/// current availability of each cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaTerms {
    /// Virtual cluster specifications (prices, utilities, fleet sizes,
    /// per-VM bandwidth QoS).
    pub virtual_clusters: Vec<VirtualClusterSpec>,
    /// NFS cluster specifications (prices, utilities, capacities).
    pub nfs_clusters: Vec<NfsClusterSpec>,
}

impl SlaTerms {
    /// The cheapest marginal price of cloud bandwidth under these terms,
    /// in dollars per (byte/s)·hour: the minimum over virtual clusters of
    /// `price / vm_bandwidth`. This is the unit price the federation
    /// optimizer uses to compare sites (the integer VM plan mixes
    /// clusters, but the greedy heuristic fills the best-value cluster
    /// first, so the cheapest ratio is the marginal one).
    pub fn bandwidth_price_per_bps_hour(&self) -> f64 {
        self.virtual_clusters
            .iter()
            .map(|c| c.price.dollars_per_hour / c.vm_bandwidth_bytes_per_sec)
            .fold(f64::INFINITY, f64::min)
    }

    /// A copy of these terms with every VM rental price multiplied by
    /// `factor` — the price book of a regional site whose market differs
    /// from the reference region's. Storage prices are left untouched
    /// (NFS cost is negligible at the paper's scale).
    pub fn with_vm_price_factor(&self, factor: f64) -> Self {
        Self {
            virtual_clusters: scale_vm_prices(&self.virtual_clusters, factor),
            nfs_clusters: self.nfs_clusters.clone(),
        }
    }
}

/// Virtual cluster specs with rental prices multiplied by `factor`;
/// shared by [`SlaTerms::with_vm_price_factor`] and the federated
/// simulator (which builds each regional [`Cloud`] from scaled specs so
/// billing happens at the site's own prices).
pub fn scale_vm_prices(specs: &[VirtualClusterSpec], factor: f64) -> Vec<VirtualClusterSpec> {
    specs
        .iter()
        .map(|c| VirtualClusterSpec {
            price: crate::pricing::Rate::per_hour(c.price.dollars_per_hour * factor),
            ..c.clone()
        })
        .collect()
}

/// Virtual cluster specs with fleet sizes (`max_vms`) multiplied by
/// `factor` (rounded up, so a factor of 1.0 is the identity). The
/// scale-out simulations use this to grow the paper's Table II testbed —
/// 150 VMs sized for ~2500 viewers — in proportion to the simulated
/// population, keeping per-VM bandwidth, utilities, and prices exactly
/// the paper's.
pub fn scale_fleet_capacity(specs: &[VirtualClusterSpec], factor: f64) -> Vec<VirtualClusterSpec> {
    specs
        .iter()
        .map(|c| VirtualClusterSpec {
            max_vms: (c.max_vms as f64 * factor).ceil() as usize,
            ..c.clone()
        })
        .collect()
}

/// NFS cluster specs with storage capacities multiplied by `factor`
/// (the scale-out analogue of [`scale_fleet_capacity`] for Table III).
pub fn scale_nfs_capacity(
    specs: &[crate::cluster::NfsClusterSpec],
    factor: f64,
) -> Vec<crate::cluster::NfsClusterSpec> {
    specs
        .iter()
        .map(|c| crate::cluster::NfsClusterSpec {
            capacity_bytes: (c.capacity_bytes as f64 * factor).ceil() as u64,
            ..c.clone()
        })
        .collect()
}

/// A resource change request submitted via the broker at the start of a
/// provisioning interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceRequest {
    /// Target number of active VMs per virtual cluster.
    pub vm_targets: Vec<usize>,
    /// Optional new chunk placement (omitted when demand has not shifted
    /// enough to justify re-placement, per paper Sec. V-B).
    pub placement: Option<PlacementPlan>,
}

/// The cloud provider: schedulers plus billing behind a broker interface.
#[derive(Debug)]
pub struct Cloud {
    vms: VmScheduler,
    nfs: NfsScheduler,
    billing: BillingMeter,
    clock: f64,
}

impl Cloud {
    /// Builds a cloud from cluster specifications.
    ///
    /// # Errors
    ///
    /// Propagates specification validation failures.
    pub fn new(
        virtual_clusters: Vec<VirtualClusterSpec>,
        nfs_clusters: Vec<NfsClusterSpec>,
        chunk_bytes: u64,
    ) -> Result<Self, CloudError> {
        let billing = BillingMeter::new(&virtual_clusters, &nfs_clusters)?;
        let vms = VmScheduler::new(virtual_clusters)?;
        let nfs = NfsScheduler::new(nfs_clusters, chunk_bytes)?;
        Ok(Self {
            vms,
            nfs,
            billing,
            clock: 0.0,
        })
    }

    /// The paper's experimental cloud: Table II VM clusters, Table III NFS
    /// clusters, 15 MB chunks.
    ///
    /// # Errors
    ///
    /// Never fails for the paper constants; the `Result` mirrors
    /// [`Cloud::new`].
    pub fn paper_default() -> Result<Self, CloudError> {
        Self::new(
            crate::cluster::paper_virtual_clusters(),
            crate::cluster::paper_nfs_clusters(),
            15_000_000,
        )
    }

    /// Overrides VM boot/shutdown latencies.
    pub fn with_vm_latencies(mut self, boot_seconds: f64, shutdown_seconds: f64) -> Self {
        self.vms = self.vms.with_latencies(boot_seconds, shutdown_seconds);
        self
    }

    /// The SLA negotiator: current terms for the consumer.
    pub fn sla_terms(&self) -> SlaTerms {
        SlaTerms {
            virtual_clusters: self.vms.specs().to_vec(),
            nfs_clusters: self.nfs.specs().to_vec(),
        }
    }

    /// Advances simulated time: progresses VM lifecycles and accrues
    /// billing for the elapsed period. Billing is exact regardless of tick
    /// granularity: the period is split at every shutdown completion so an
    /// instance is charged precisely from launch until fully off.
    ///
    /// # Errors
    ///
    /// Rejects time moving backwards.
    pub fn tick(&mut self, now: f64) -> Result<(), CloudError> {
        if now < self.clock {
            return Err(CloudError::TimeWentBackwards {
                last: self.clock,
                submitted: now,
            });
        }
        let mut cursor = self.clock;
        while let Some(change) = self.vms.next_billing_change(cursor, now) {
            self.billing
                .accrue(change, self.vms.billable_counts(), self.nfs.used_bytes())?;
            self.vms.tick(change)?;
            cursor = change;
        }
        self.billing
            .accrue(now, self.vms.billable_counts(), self.nfs.used_bytes())?;
        self.vms.tick(now)?;
        self.clock = now;
        Ok(())
    }

    /// Submits a resource request through the broker (the request monitor
    /// forwards it to the schedulers). Effective immediately at the current
    /// clock; VM changes take their boot/shutdown latency to materialize.
    ///
    /// # Errors
    ///
    /// Returns the first scheduler rejection; on VM-target rejection no
    /// placement change is applied either.
    pub fn submit_request(&mut self, request: &ResourceRequest) -> Result<(), CloudError> {
        if request.vm_targets.len() != self.vms.clusters() {
            return Err(crate::error::invalid_param(
                "vm_targets",
                format!(
                    "expected {} clusters, got {}",
                    self.vms.clusters(),
                    request.vm_targets.len()
                ),
            ));
        }
        // Validate all VM targets before mutating anything.
        for (cluster, &target) in request.vm_targets.iter().enumerate() {
            let max = self.vms.specs()[cluster].max_vms;
            if target > max {
                return Err(CloudError::InsufficientVms {
                    cluster,
                    requested: target,
                    available: max,
                });
            }
        }
        for (cluster, &target) in request.vm_targets.iter().enumerate() {
            self.vms.set_target(cluster, target, self.clock)?;
        }
        if let Some(plan) = &request.placement {
            self.nfs.apply_placement(plan.clone())?;
        }
        Ok(())
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// The VM scheduler (read access for monitoring).
    pub fn vm_scheduler(&self) -> &VmScheduler {
        &self.vms
    }

    /// The NFS scheduler (read access for monitoring).
    pub fn nfs_scheduler(&self) -> &NfsScheduler {
        &self.nfs
    }

    /// The billing meter.
    pub fn billing(&self) -> &BillingMeter {
        &self.billing
    }

    /// Total bandwidth currently served by running VMs, bytes/second.
    pub fn running_bandwidth(&self) -> f64 {
        self.vms.total_running_bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Money;
    use crate::scheduler::ChunkKey;

    #[test]
    fn sla_terms_reflect_paper_tables() {
        let cloud = Cloud::paper_default().unwrap();
        let terms = cloud.sla_terms();
        assert_eq!(terms.virtual_clusters.len(), 3);
        assert_eq!(terms.nfs_clusters.len(), 2);
    }

    #[test]
    fn end_to_end_request_provision_bill() {
        let mut cloud = Cloud::paper_default().unwrap();
        let mut placement = PlacementPlan::new();
        for i in 0..10 {
            placement.insert(
                ChunkKey {
                    channel: 0,
                    chunk: i,
                },
                1,
            );
        }
        cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![10, 0, 0],
                placement: Some(placement),
            })
            .unwrap();
        // After boot latency the bandwidth is online.
        cloud.tick(25.0).unwrap();
        assert!((cloud.running_bandwidth() - 10.0 * 1.25e6).abs() < 1.0);
        // One hour of 10 Standard VMs: $4.50 (+ tiny storage).
        cloud.tick(3625.0).unwrap();
        let vm_cost = cloud.billing().vm_cost().as_dollars();
        assert!((vm_cost - 0.45 * 10.0 * 3625.0 / 3600.0).abs() < 1e-9);
        let storage = cloud.billing().storage_cost().as_dollars();
        // 150 MB on High for ~1 h ~ 0.15 GB * 2.08e-4.
        assert!(storage > 0.0 && storage < 1e-3, "storage {storage}");
    }

    #[test]
    fn provisioning_latency_is_seconds_scale() {
        // The paper's point: parallel boot means even large scale-ups are
        // ready within one boot latency.
        let mut cloud = Cloud::paper_default().unwrap();
        cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![75, 30, 45],
                placement: None,
            })
            .unwrap();
        cloud.tick(25.0).unwrap();
        let total = 75.0 + 30.0 + 45.0;
        assert!((cloud.running_bandwidth() - total * 1.25e6).abs() < 1.0);
    }

    #[test]
    fn rejected_vm_target_applies_nothing() {
        let mut cloud = Cloud::paper_default().unwrap();
        let mut placement = PlacementPlan::new();
        placement.insert(
            ChunkKey {
                channel: 0,
                chunk: 0,
            },
            0,
        );
        let err = cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![10, 99, 0], // 99 > 30 Medium VMs
                placement: Some(placement),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            CloudError::InsufficientVms { cluster: 1, .. }
        ));
        cloud.tick(60.0).unwrap();
        assert_eq!(cloud.running_bandwidth(), 0.0, "no VMs launched");
        assert_eq!(
            cloud.nfs_scheduler().placed_chunks(),
            0,
            "no placement applied"
        );
    }

    #[test]
    fn scale_down_stops_billing_after_shutdown() {
        let mut cloud = Cloud::paper_default().unwrap();
        cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![20, 0, 0],
                placement: None,
            })
            .unwrap();
        cloud.tick(3600.0).unwrap();
        cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![0, 0, 0],
                placement: None,
            })
            .unwrap();
        cloud.tick(3610.0).unwrap(); // shutdown completes
        let cost_before = cloud.billing().total_cost();
        cloud.tick(7200.0).unwrap();
        let cost_after = cloud.billing().total_cost();
        assert!(
            (cost_after - cost_before).as_dollars() < 1e-9,
            "no further charges"
        );
    }

    #[test]
    fn zero_state_is_free() {
        let mut cloud = Cloud::paper_default().unwrap();
        cloud.tick(86_400.0).unwrap();
        assert_eq!(cloud.billing().total_cost(), Money::ZERO);
    }

    #[test]
    fn bandwidth_price_is_the_cheapest_cluster_ratio() {
        let sla = Cloud::paper_default().unwrap().sla_terms();
        // Paper Table II: Standard $0.45/h at 1.25 MB/s is the cheapest
        // ratio (3.6e-7 $/Bps·h); Medium and Advanced cost more per unit.
        assert!((sla.bandwidth_price_per_bps_hour() - 0.45 / 1.25e6).abs() < 1e-15);
    }

    #[test]
    fn vm_price_factor_scales_rental_only() {
        let sla = Cloud::paper_default().unwrap().sla_terms();
        let scaled = sla.with_vm_price_factor(1.5);
        for (a, b) in sla.virtual_clusters.iter().zip(&scaled.virtual_clusters) {
            assert!((b.price.dollars_per_hour - 1.5 * a.price.dollars_per_hour).abs() < 1e-12);
            assert_eq!(a.max_vms, b.max_vms);
            assert_eq!(a.vm_bandwidth_bytes_per_sec, b.vm_bandwidth_bytes_per_sec);
        }
        assert_eq!(sla.nfs_clusters, scaled.nfs_clusters);
        assert!(
            (scaled.bandwidth_price_per_bps_hour() - 1.5 * sla.bandwidth_price_per_bps_hour())
                .abs()
                < 1e-15
        );
    }
}
