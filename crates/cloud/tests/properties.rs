//! Property-based tests over the cloud model: scheduler convergence and
//! billing invariants under arbitrary target/tick sequences.

use cloudmedia_cloud::broker::{Cloud, ResourceRequest};
use cloudmedia_cloud::cluster::paper_virtual_clusters;
use proptest::prelude::*;

/// Strategy: a sequence of (per-cluster targets, dwell seconds) steps.
fn schedule_strategy() -> impl Strategy<Value = Vec<([usize; 3], f64)>> {
    proptest::collection::vec(
        ((0usize..=75, 0usize..=30, 0usize..=45), 1.0..7200.0f64)
            .prop_map(|((a, b, c), dwell)| ([a, b, c], dwell)),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fleet_converges_and_billing_is_monotone(schedule in schedule_strategy()) {
        let mut cloud = Cloud::paper_default().unwrap();
        let mut clock = 0.0;
        let mut last_cost = 0.0;
        for (targets, dwell) in &schedule {
            cloud.submit_request(&ResourceRequest {
                vm_targets: targets.to_vec(),
                placement: None,
            }).unwrap();
            clock += dwell;
            cloud.tick(clock).unwrap();
            let cost = cloud.billing().total_cost().as_dollars();
            prop_assert!(cost >= last_cost - 1e-12, "billing must be monotone");
            last_cost = cost;
        }
        // After a settle period the fleet matches the last request exactly.
        let (final_targets, _) = schedule.last().unwrap();
        clock += 60.0;
        cloud.tick(clock).unwrap();
        for (c, &want) in final_targets.iter().enumerate() {
            prop_assert_eq!(cloud.vm_scheduler().running(c), want, "cluster {} converged", c);
        }
    }

    #[test]
    fn billing_never_exceeds_full_fleet_rate(schedule in schedule_strategy()) {
        let specs = paper_virtual_clusters();
        let max_rate: f64 = specs
            .iter()
            .map(|s| s.max_vms as f64 * s.price.dollars_per_hour)
            .sum();
        let mut cloud = Cloud::paper_default().unwrap();
        let mut clock = 0.0;
        for (targets, dwell) in &schedule {
            cloud.submit_request(&ResourceRequest {
                vm_targets: targets.to_vec(),
                placement: None,
            }).unwrap();
            clock += dwell;
            cloud.tick(clock).unwrap();
        }
        let cost = cloud.billing().total_cost().as_dollars();
        prop_assert!(
            cost <= max_rate * clock / 3600.0 + 1e-9,
            "cost {cost} above full-fleet bound"
        );
    }

    #[test]
    fn running_bandwidth_bounded_by_requests(schedule in schedule_strategy()) {
        let mut cloud = Cloud::paper_default().unwrap();
        let mut clock = 0.0;
        let mut max_requested = 0usize;
        for (targets, dwell) in &schedule {
            cloud.submit_request(&ResourceRequest {
                vm_targets: targets.to_vec(),
                placement: None,
            }).unwrap();
            max_requested = max_requested.max(targets.iter().sum());
            clock += dwell;
            cloud.tick(clock).unwrap();
            // Running VMs never exceed the largest fleet ever requested.
            let running: usize = (0..3).map(|c| cloud.vm_scheduler().running(c)).sum();
            prop_assert!(running <= max_requested);
        }
    }
}
