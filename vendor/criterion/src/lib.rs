//! Offline stand-in for `criterion`, vendored because this build
//! environment has no registry access.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple adaptive wall-clock timer instead of criterion's
//! statistical machinery. Each benchmark reports the mean time per
//! iteration on stdout as `bench <name> ... <mean> <unit>/iter`.
//!
//! Set `CRITERION_QUICK=1` to cap sampling at one measurement iteration
//! per bench (used by CI smoke runs).

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the
/// stand-in times each batch individually regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    target_time: Duration,
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        Self {
            target_time: if quick {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(300)
            },
            max_samples: if quick { 1 } else { 50 },
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.into(), self.target_time, self.max_samples, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.into(),
            target_time: self.target_time,
            max_samples: self.max_samples,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    prefix: String,
    target_time: Duration,
    max_samples: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.max_samples = self.max_samples.min(n.max(1));
        self
    }

    /// Extends the per-bench measurement time budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.target_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        run_bench(full, self.target_time, self.max_samples, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; captures what to measure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed());
    }

    /// Times `routine` over inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: String,
    target_time: Duration,
    max_samples: usize,
    mut f: F,
) {
    // Calibration pass: one iteration, to size the measurement loop.
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    let cal_start = Instant::now();
    f(&mut b);
    let once = cal_start.elapsed().max(Duration::from_nanos(1));
    let per_sample_budget = target_time.as_secs_f64() / max_samples as f64;
    let iters = (per_sample_budget / once.as_secs_f64()).clamp(1.0, 1e6) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let mut samples = 0usize;
    while samples < max_samples && total < target_time {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: iters,
        };
        f(&mut b);
        for s in b.samples {
            total += s;
            total_iters += iters;
        }
        samples += 1;
    }
    if total_iters == 0 {
        total_iters = 1;
    }
    let per_iter = total.as_secs_f64() / total_iters as f64;
    let (value, unit) = humanize(per_iter);
    println!("bench {name:<50} {value:>10.3} {unit}/iter ({total_iters} iters)");
}

fn humanize(seconds: f64) -> (f64, &'static str) {
    if seconds >= 1.0 {
        (seconds, "s")
    } else if seconds >= 1e-3 {
        (seconds * 1e3, "ms")
    } else if seconds >= 1e-6 {
        (seconds * 1e6, "us")
    } else {
        (seconds * 1e9, "ns")
    }
}

/// Re-export for benches that import it from criterion.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
///
/// Ignores harness arguments (`--bench`); exits immediately when invoked
/// as a test (`--test`) so `cargo test --benches` stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn groups_and_batched_iteration() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
