//! Offline stand-in for `proptest`, vendored because this build
//! environment has no registry access.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, the [`Strategy`] trait with `prop_map` /
//! `prop_filter`, numeric range strategies, tuple strategies,
//! `collection::vec`, `any::<T>()`, `ProptestConfig::with_cases`, and
//! `prop_assert!` / `prop_assert_eq!`. Sampling is deterministic
//! (SplitMix64 seeded per case) so failures reproduce; there is no
//! shrinking — a failing case panics with the sampled inputs' debug
//! representation left to the assertion message.

/// Deterministic sampling source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return self.next_u64();
        }
        // Multiply-shift; bias is negligible for test-case generation.
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`, resampling (up to an
    /// internal retry cap).
    fn prop_filter<F>(self, label: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            label,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    label: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive samples",
            self.label
        );
    }
}

// --- range strategies ---------------------------------------------------

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

// --- tuple strategies ---------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

// --- any / Arbitrary ----------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- collections --------------------------------------------------------

/// `proptest::collection` — sized containers of inner strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed size or a size range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// --- runner & config ----------------------------------------------------

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 100 }
    }
}

/// Per-property driver: deterministic per-case seeds.
#[derive(Debug)]
pub struct Runner {
    config: ProptestConfig,
    case: u64,
}

impl Runner {
    /// Creates a runner.
    pub fn new(config: ProptestConfig) -> Self {
        Self { config, case: 0 }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Starts case `i` (seeds the case RNG).
    pub fn begin_case(&mut self, i: u32) -> TestRng {
        self.case = u64::from(i);
        TestRng::new(0xA076_1D64_78BD_642F ^ (self.case.wrapping_mul(0x9DDF_EA08_EB38_2D69)))
    }

    /// Samples a strategy within the current case.
    pub fn sample<S: Strategy>(&self, strategy: &S, rng: &mut TestRng) -> S::Value {
        strategy.sample(rng)
    }
}

/// Asserts a property, reporting the case number on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($a, $b $(, $($fmt)*)?);
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::Runner::new($cfg);
                for case in 0..runner.cases() {
                    let mut rng = runner.begin_case(case);
                    $( let $arg = runner.sample(&($strat), &mut rng); )*
                    $body
                }
            }
        )*
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, Arbitrary, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1.5..9.5f64, n in 3usize..7, k in 1..=4i32) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0.0..1.0f64, 10u32..20).prop_map(|(a, b)| (a * 2.0, b + 1))
        ) {
            prop_assert!(pair.0 < 2.0);
            prop_assert!((11..21).contains(&pair.1));
        }

        #[test]
        fn filters_apply(v in (0.0..1.0f64, 0.0..1.0f64).prop_filter("sum<1", |(a, b)| a + b < 1.0)) {
            prop_assert!(v.0 + v.1 < 1.0);
        }

        #[test]
        fn vectors_sized(xs in collection::vec(0.0..2.0f64, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| (0.0..2.0).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_cases_respected(_x in any::<u64>()) {
            // Runs without panicking; case count is internal.
        }
    }

    #[test]
    fn determinism_across_runs() {
        let strat = (0.0..1.0f64, 0usize..100);
        let mut runner = crate::Runner::new(ProptestConfig::with_cases(5));
        let mut rng_a = runner.begin_case(3);
        let a = runner.sample(&strat, &mut rng_a);
        let mut rng_b = runner.begin_case(3);
        let b = runner.sample(&strat, &mut rng_b);
        assert_eq!(a, b);
    }
}
