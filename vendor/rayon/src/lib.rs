//! Offline stand-in for `rayon`, vendored because this build environment
//! has no registry access.
//!
//! Provides structured parallelism with rayon's `join`/`scope` call
//! shapes, implemented over `std::thread::scope` rather than a
//! work-stealing pool. Thread spawn costs ~10 µs, so callers should gate
//! parallel dispatch on work size — which the simulator does anyway,
//! because at small populations sequential execution beats any pool.
//! Unlike real rayon, the closures passed to [`join`] must be `Send`.

/// Runs two closures, potentially in parallel, returning both results.
///
/// `a` runs on the calling thread while `b` runs on a scoped worker
/// thread.
///
/// # Panics
///
/// Propagates panics from either closure.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// A scope in which parallel tasks can be spawned, mirroring
/// `rayon::Scope`.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task into the scope; all tasks complete before
    /// [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let s = Scope { inner };
            f(&s);
        });
    }
}

/// Creates a scope for spawning parallel tasks; blocks until every
/// spawned task finishes.
///
/// # Panics
///
/// Propagates panics from spawned tasks.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    })
}

/// Number of hardware threads available (rayon's default pool size).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "two".len());
        assert_eq!(a, 4);
        assert_eq!(b, 3);
    }

    #[test]
    fn join_runs_in_parallel_with_shared_data() {
        let data: Vec<u64> = (0..1000).collect();
        let (left, right) = join(
            || data[..500].iter().sum::<u64>(),
            || data[500..].iter().sum::<u64>(),
        );
        assert_eq!(left + right, data.iter().sum::<u64>());
    }

    #[test]
    fn scope_spawns_disjoint_mutations() {
        let mut buf = vec![0u64; 64];
        let (left, right) = buf.split_at_mut(32);
        scope(|s| {
            s.spawn(move |_| left.iter_mut().for_each(|x| *x = 1));
            s.spawn(move |_| right.iter_mut().for_each(|x| *x = 2));
        });
        assert_eq!(buf[..32].iter().sum::<u64>(), 32);
        assert_eq!(buf[32..].iter().sum::<u64>(), 64);
    }

    #[test]
    fn nested_scope_spawn() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                count.fetch_add(1, Ordering::SeqCst);
                s2.spawn(|_| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn threads_available() {
        assert!(current_num_threads() >= 1);
    }
}
