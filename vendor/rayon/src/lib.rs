//! Offline stand-in for `rayon`, vendored because this build environment
//! has no registry access.
//!
//! Provides structured parallelism with rayon's `join`/`scope` call
//! shapes, backed by a **persistent worker pool** (spawned lazily on
//! first use, `available_parallelism − 1` workers; `RAYON_NUM_THREADS`
//! overrides the size, as in real rayon). Earlier revisions
//! spawned scoped OS threads per call (~10 µs each), which made
//! per-round dispatch — the federated simulator fans its regions out
//! every 10-second round, ~60 k times per simulated week — strictly
//! worse than serial execution. With the pool, a `scope` dispatch costs
//! one queue push and one wake-up per task.
//!
//! Queued jobs carry their spawning scope's identity, and a thread
//! blocked on a scope drains that scope's jobs before stealing foreign
//! work — see `TaggedJob`. This keeps nested fan-outs (an outer
//! scope of shard tasks, each opening an inner scope of sub-channel
//! lane tasks) from inverting: the waiter finishes its own lanes
//! instead of adopting another shard's full round.
//!
//! On a single-hardware-thread host the pool has zero workers and
//! `Scope::spawn` runs its task inline on the calling thread — exactly
//! the serial execution order, with no queue or synchronization traffic.
//! Callers should still gate parallel dispatch on work size; below a few
//! microseconds of work per task the dispatch overhead dominates.
//!
//! Unlike real rayon, the closures passed to [`join`] must be `Send`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// A lifetime-erased queued task.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued task tagged with the identity of the scope that spawned it
/// (the `ScopeData` stack address, unique while the scope is alive —
/// and a scope outlives its queued tasks by construction).
///
/// The tag drives *scope-affine stealing*: a thread blocked in
/// [`wait_for_scope`] drains jobs of **its own scope** before helping
/// with anything else. Without the preference, a shard task waiting on
/// its sub-lane fan-out could pull another shard's whole-round job off
/// the global queue and bury its own near-finished scope under
/// arbitrary foreign work; with it, nested fan-outs (the sharded
/// engine's `(shard, lane)` shape) complete innermost-first while idle
/// threads still steal any runnable job via the plain FIFO path.
struct TaggedJob {
    scope_id: usize,
    job: Job,
}

/// The global worker pool.
struct Pool {
    queue: Mutex<VecDeque<TaggedJob>>,
    work_available: Condvar,
    /// Number of worker threads (0 on single-threaded hosts).
    workers: usize,
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

/// The configured pool size: `RAYON_NUM_THREADS` (the env var real
/// rayon honors; 0 or unparsable values are ignored) or the host's
/// available parallelism. Read once and cached, so the pool and every
/// [`current_num_threads`] caller agree even if the environment
/// changes after startup. Scale benchmarks use the override to sweep
/// thread counts across processes.
fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = configured_threads().saturating_sub(1);
        let p: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(p))
                .expect("spawn pool worker");
        }
        p
    })
}

fn worker_loop(p: &'static Pool) {
    loop {
        let task = {
            let mut queue = p.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                queue = p.work_available.wait(queue).expect("pool queue poisoned");
            }
        };
        (task.job)();
    }
}

/// Shared bookkeeping of one `scope` invocation: outstanding task count
/// and the first panic payload, if any.
struct ScopeData {
    /// Queued-or-running tasks of this scope.
    pending: Mutex<usize>,
    /// Signaled whenever a task of this scope completes.
    done: Condvar,
    /// First panic payload raised by a task of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeData {
    fn run_task(&self, f: impl FnOnce()) {
        let result = catch_unwind(AssertUnwindSafe(f));
        if let Err(payload) = result {
            let mut slot = self.panic.lock().expect("scope panic slot poisoned");
            slot.get_or_insert(payload);
        }
        let mut pending = self.pending.lock().expect("scope counter poisoned");
        *pending -= 1;
        // Notify while still holding the lock: a waiter can only observe
        // `pending == 0` (and then tear down this stack-allocated
        // ScopeData) after we release it, i.e. strictly after this —
        // the task's final — access to the scope. Notifying after the
        // unlock would leave a window where the scope frame is freed
        // under the Condvar touch.
        self.done.notify_all();
        drop(pending);
    }
}

/// A scope in which parallel tasks can be spawned, mirroring
/// `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    data: &'scope ScopeData,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task into the scope; all tasks complete before
    /// [`scope`] returns. With no pool workers (single-threaded host)
    /// the task runs inline immediately, in program order.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let p = pool();
        if p.workers == 0 {
            // Serial fast path: no queueing, no synchronization.
            f(self);
            return;
        }
        let data = self.data;
        *data.pending.lock().expect("scope counter poisoned") += 1;
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            data.run_task(|| {
                let scope = Scope {
                    data,
                    _env: std::marker::PhantomData,
                };
                f(&scope);
            });
        });
        // SAFETY: `scope` does not return (even on unwind — see the wait
        // guard) until this scope's pending count reaches zero, so every
        // reference the task captures from 'scope/'env outlives its
        // execution. The lifetime erasure is therefore sound, exactly as
        // in std::thread::scope's implementation strategy.
        let task: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(task) };
        let task = TaggedJob {
            scope_id: std::ptr::from_ref(data) as usize,
            job: task,
        };
        let mut queue = p.queue.lock().expect("pool queue poisoned");
        queue.push_back(task);
        drop(queue);
        p.work_available.notify_one();
    }
}

/// Blocks until every task of `data` has completed, helping to drain the
/// global queue while waiting (so a caller is never idle while work —
/// its own or another scope's — is runnable). Jobs spawned by **this
/// scope** are taken first (see [`TaggedJob`]); only when none are
/// queued does the waiter steal the oldest foreign job.
fn wait_for_scope(p: &Pool, data: &ScopeData) {
    let scope_id = std::ptr::from_ref(data) as usize;
    loop {
        {
            let pending = data.pending.lock().expect("scope counter poisoned");
            if *pending == 0 {
                return;
            }
        }
        let task = {
            let mut queue = p.queue.lock().expect("pool queue poisoned");
            match queue.iter().position(|t| t.scope_id == scope_id) {
                Some(i) => queue.remove(i),
                None => queue.pop_front(),
            }
        };
        match task {
            Some(task) => (task.job)(),
            None => {
                let pending = data.pending.lock().expect("scope counter poisoned");
                if *pending == 0 {
                    return;
                }
                // Tasks of this scope are running elsewhere; sleep until
                // one completes.
                drop(data.done.wait(pending).expect("scope counter poisoned"));
            }
        }
    }
}

/// Creates a scope for spawning parallel tasks; blocks until every
/// spawned task finishes.
///
/// # Panics
///
/// Propagates panics from spawned tasks.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let p = pool();
    let data = ScopeData {
        pending: Mutex::new(0),
        done: Condvar::new(),
        panic: Mutex::new(None),
    };
    // Wait even if `f` itself unwinds: queued tasks hold references into
    // this stack frame and must finish before it is torn down.
    struct WaitGuard<'a> {
        p: &'a Pool,
        data: &'a ScopeData,
    }
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            wait_for_scope(self.p, self.data);
        }
    }
    let result = {
        let _guard = WaitGuard { p, data: &data };
        let scope = Scope {
            data: &data,
            _env: std::marker::PhantomData,
        };
        f(&scope)
        // guard drops here, waiting for completion
    };
    let payload = data.panic.lock().expect("scope panic slot poisoned").take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
    result
}

/// Runs two closures, potentially in parallel, returning both results.
///
/// `a` runs on the calling thread while `b` is eligible to run on a pool
/// worker.
///
/// # Panics
///
/// Propagates panics from either closure.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|_| rb = Some(b()));
        a()
    });
    (ra, rb.expect("spawned task completed"))
}

/// The pool's thread count: the `RAYON_NUM_THREADS` override if set,
/// otherwise the number of hardware threads available.
pub fn current_num_threads() -> usize {
    configured_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "two".len());
        assert_eq!(a, 4);
        assert_eq!(b, 3);
    }

    #[test]
    fn join_runs_in_parallel_with_shared_data() {
        let data: Vec<u64> = (0..1000).collect();
        let (left, right) = join(
            || data[..500].iter().sum::<u64>(),
            || data[500..].iter().sum::<u64>(),
        );
        assert_eq!(left + right, data.iter().sum::<u64>());
    }

    #[test]
    fn scope_spawns_disjoint_mutations() {
        let mut buf = vec![0u64; 64];
        let (left, right) = buf.split_at_mut(32);
        scope(|s| {
            s.spawn(move |_| left.iter_mut().for_each(|x| *x = 1));
            s.spawn(move |_| right.iter_mut().for_each(|x| *x = 2));
        });
        assert_eq!(buf[..32].iter().sum::<u64>(), 32);
        assert_eq!(buf[32..].iter().sum::<u64>(), 64);
    }

    #[test]
    fn nested_scope_spawn() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                count.fetch_add(1, Ordering::SeqCst);
                s2.spawn(|_| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn nested_lane_fanout_under_shared_pool() {
        // The sharded engine's two-level shape: an outer scope fans
        // shard tasks out, and each shard task opens an inner scope
        // fanning sub-lane tasks over disjoint slices. Every lane job
        // and shard job shares the one global queue; scope-affine
        // stealing must still complete them all with the right data.
        let mut shards = vec![vec![0u64; 64]; 8];
        scope(|s| {
            for (i, shard) in shards.iter_mut().enumerate() {
                s.spawn(move |_| {
                    let seg = shard.len() / 4;
                    scope(|inner| {
                        for (j, lane) in shard.chunks_mut(seg).enumerate() {
                            inner.spawn(move |_| {
                                for x in lane.iter_mut() {
                                    *x = (i * 10 + j) as u64;
                                }
                            });
                        }
                    });
                });
            }
        });
        for (i, shard) in shards.iter().enumerate() {
            for (j, lane) in shard.chunks(16).enumerate() {
                assert!(lane.iter().all(|&x| x == (i * 10 + j) as u64));
            }
        }
    }

    #[test]
    fn many_rounds_of_small_scopes() {
        // The pool must stay correct (and cheap) across tens of
        // thousands of scope invocations — the federated simulator's
        // per-round dispatch pattern.
        let mut totals = [0u64; 3];
        for round in 0..10_000u64 {
            let mut parts = [0u64; 3];
            scope(|s| {
                for (i, p) in parts.iter_mut().enumerate() {
                    s.spawn(move |_| *p = round + i as u64);
                }
            });
            for (t, p) in totals.iter_mut().zip(&parts) {
                *t += p;
            }
        }
        let base: u64 = (0..10_000).sum();
        assert_eq!(totals, [base, base + 10_000, base + 20_000]);
    }

    #[test]
    fn scope_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn threads_available() {
        assert!(current_num_threads() >= 1);
    }
}
