//! Offline stand-in for `rand`, vendored because this build environment
//! has no registry access.
//!
//! Provides the exact surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `RngExt::{random, random_range}`.
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! deterministic, and statistically strong enough for the workload
//! generators' distribution tests. It is **not** the ChaCha12 generator
//! real `StdRng` wraps, so streams differ from upstream rand; everything
//! in this workspace only relies on seeded determinism, not on matching
//! upstream streams.

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling extension methods, mirroring rand's `RngExt`/`Rng`.
pub trait RngExt: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: IntRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample_inclusive(self, lo, hi_inclusive)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 range.
                    return rng.next_u64() as $t;
                }
                // Debiased multiply-shift (Lemire).
                let mut x = rng.next_u64();
                let mut m = (x as u128).wrapping_mul(span as u128);
                let mut l = m as u64;
                if l < span {
                    let t = span.wrapping_neg() % span;
                    while l < t {
                        x = rng.next_u64();
                        m = (x as u128).wrapping_mul(span as u128);
                        l = m as u64;
                    }
                }
                lo + (m >> 64) as $t
            }
        }
    )*};
}

impl_uniform_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let offset = u64::sample_inclusive(rng, 0, span);
                ((lo as i64).wrapping_add(offset as i64)) as $t
            }
        }
    )*};
}

impl_uniform_int!(isize, i64, i32, i16, i8);

/// Range forms accepted by [`RngExt::random_range`].
pub trait IntRange<T> {
    /// The `(low, high_inclusive)` bounds.
    fn bounds(self) -> (T, T);
}

impl<T: UniformInt + Dec> IntRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end.dec())
    }
}

impl<T: UniformInt> IntRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        self.into_inner()
    }
}

/// Decrement helper for converting half-open to inclusive bounds.
pub trait Dec {
    /// `self - 1`, panicking if the half-open range was empty.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self.checked_sub(1).expect("empty range in random_range")
            }
        }
    )*};
}

impl_dec!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_uniform_unit() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k = rng.random_range(0..5usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let k = rng.random_range(3..=4usize);
            assert!((3..=4).contains(&k));
        }
        assert_eq!(rng.random_range(9..10usize), 9);
    }

    #[test]
    fn bool_and_ints_sample() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..1000).filter(|_| rng.random::<bool>()).count();
        assert!((300..700).contains(&heads));
        let _: u64 = rng.random();
        let _: u32 = rng.random();
        let _: f32 = rng.random();
    }
}
