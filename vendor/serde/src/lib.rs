//! Offline stand-in for `serde`, vendored because this build environment
//! has no registry access.
//!
//! Instead of serde's visitor-based zero-copy architecture, this crate
//! uses a simple tree data model: [`Serialize`] lowers a value to a
//! [`Value`], [`Deserialize`] rebuilds it from one. The companion
//! `serde_json` crate renders and parses `Value` trees. The derive macros
//! (`#[derive(Serialize, Deserialize)]`) are provided by the
//! `serde_derive` proc-macro crate and re-exported here, matching the
//! import paths real serde users write (`use serde::{Serialize,
//! Deserialize};`).
//!
//! Enum representation mirrors serde's default externally-tagged JSON
//! form: unit variants serialize to `"Name"`, struct variants to
//! `{"Name": {..fields..}}`, and newtype/tuple variants to
//! `{"Name": value}` / `{"Name": [values]}`.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree value — the data model every serializable type
/// lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved so
    /// serialization is deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when rebuilding a typed value from a [`Value`] tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Creates a [`DeError`] with a formatted message.
pub fn de_error(msg: impl Into<String>) -> DeError {
    DeError(msg.into())
}

/// Types that can lower themselves to the [`Value`] data model.
pub trait Serialize {
    /// Lowers `self` to a tree value.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value of this type from a tree value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// --- primitive impls ----------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| de_error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| de_error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(de_error(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| de_error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| de_error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(de_error(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(de_error(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de_error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(de_error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

// --- containers ---------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de_error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// Maps with arbitrary (non-string) keys serialize as arrays of
// `[key, value]` pairs, which round-trips losslessly through JSON.
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|pair| match pair {
                    Value::Array(kv) if kv.len() == 2 => {
                        Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                    }
                    other => Err(de_error(format!(
                        "expected [key, value] pair, got {other:?}"
                    ))),
                })
                .collect(),
            other => Err(de_error(format!("expected array of pairs, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(de_error(format!(
                "expected {N} elements, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            {
                                let item = it.next().ok_or_else(|| {
                                    de_error("tuple too short")
                                })?;
                                $t::from_value(item)?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(de_error("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(de_error(format!("expected array, got {other:?}"))),
                }
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = Some(9);
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
        let t = (1usize, 2.5f64);
        assert_eq!(<(usize, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn object_get() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get("b"), None);
    }
}
