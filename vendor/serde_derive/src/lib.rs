//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the deriving item's token stream by hand (no `syn`/`quote`
//! available offline) and emits `Serialize`/`Deserialize` impls against
//! the Value-tree data model. Supports the shapes this workspace uses:
//! plain structs with named fields, tuple structs, unit structs, and
//! enums with unit / named-field / tuple variants. Generics and
//! `#[serde(...)]` attributes are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item being derived.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives `serde::Serialize` (Value-tree lowering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("::serde::Value::Object(vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(vec![{entries}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| serialize_variant_arm(&name, v))
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (Value-tree rebuilding).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields.iter().map(|f| named_field_init(&name, f)).collect();
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Shape::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Shape::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         ::serde::de_error(\"{name}: tuple too short\"))?)?,"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) => \
                         ::std::result::Result::Ok(Self({inits})),\n\
                     _ => ::std::result::Result::Err(::serde::de_error(\
                         \"{name}: expected array\")),\n\
                 }}"
            )
        }
        Shape::UnitStruct => "::std::result::Result::Ok(Self)".to_string(),
        Shape::Enum(variants) => deserialize_enum_body(&name, variants),
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Deserialize impl parses")
}

fn named_field_init(name: &str, field: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value(v.get({field:?}).ok_or_else(|| \
         ::serde::de_error(\"{name}: missing field `{field}`\"))?)?,"
    )
}

fn serialize_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),")
        }
        VariantKind::Named(fields) => {
            let bindings = fields.join(", ");
            let entries: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f})),"))
                .collect();
            format!(
                "{name}::{vname} {{ {bindings} }} => ::serde::Value::Object(vec![\
                     ({vname:?}.to_string(), ::serde::Value::Object(vec![{entries}]))\
                 ]),"
            )
        }
        VariantKind::Tuple(1) => format!(
            "{name}::{vname}(f0) => ::serde::Value::Object(vec![\
                 ({vname:?}.to_string(), ::serde::Serialize::to_value(f0))\
             ]),"
        ),
        VariantKind::Tuple(n) => {
            let bindings: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let entries: String = bindings
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            format!(
                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                     ({vname:?}.to_string(), ::serde::Value::Array(vec![{entries}]))\
                 ]),",
                bindings.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "if s == {vn:?} {{ return ::std::result::Result::Ok({name}::{vn}); }}\n",
                vn = v.name
            )
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| match &v.kind {
            VariantKind::Unit => None,
            VariantKind::Named(fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(inner.get({f:?})\
                             .ok_or_else(|| ::serde::de_error(\
                             \"{name}::{vn}: missing field `{f}`\"))?)?,",
                            vn = v.name
                        )
                    })
                    .collect();
                Some(format!(
                    "if let ::std::option::Option::Some(inner) = v.get({vn:?}) {{\n\
                         return ::std::result::Result::Ok({name}::{vn} {{ {inits} }});\n\
                     }}\n",
                    vn = v.name
                ))
            }
            VariantKind::Tuple(1) => Some(format!(
                "if let ::std::option::Option::Some(inner) = v.get({vn:?}) {{\n\
                     return ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(inner)?));\n\
                 }}\n",
                vn = v.name
            )),
            VariantKind::Tuple(n) => {
                let inits: String = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(items.get({i})\
                             .ok_or_else(|| ::serde::de_error(\
                             \"{name}::{vn}: tuple too short\"))?)?,",
                            vn = v.name
                        )
                    })
                    .collect();
                Some(format!(
                    "if let ::std::option::Option::Some(::serde::Value::Array(items)) = \
                         v.get({vn:?}) {{\n\
                         return ::std::result::Result::Ok({name}::{vn}({inits}));\n\
                     }}\n",
                    vn = v.name
                ))
            }
        })
        .collect();
    format!(
        "if let ::serde::Value::String(s) = v {{\n\
             {unit_arms}\n\
         }}\n\
         {tagged_arms}\n\
         ::std::result::Result::Err(::serde::de_error(\
             \"no variant of {name} matched\"))"
    )
}

// --- token-stream parsing ----------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    // Skip attributes and visibility, find `struct` / `enum`.
    let mut is_enum = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde derive: expected `struct` or `enum`"),
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported by the vendored serde");
        }
    }
    // Skip a `where` clause if present (none in this workspace, cheap to allow).
    while let Some(tt) = tokens.get(i) {
        match tt {
            TokenTree::Group(_) | TokenTree::Punct(_) => break,
            TokenTree::Ident(id) if id.to_string() == "where" => {
                panic!("serde derive: `where` clauses are not supported");
            }
            _ => i += 1,
        }
    }
    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Shape::Enum(parse_variants(g.stream()))
            } else {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_segments(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
        other => panic!("serde derive: unexpected item body {other:?}"),
    };
    (name, shape)
}

/// Extracts field names from a named-field body
/// (`attrs vis name: Type, ...`). Tracks angle-bracket depth so commas
/// inside `Vec<Vec<f64>>`-style types do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma
        };
        fields.push(id.to_string());
        i += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Counts comma-separated segments at angle-depth zero (tuple arity).
fn count_segments(stream: TokenStream) -> usize {
    let mut segments = 0usize;
    let mut seen_token = false;
    let mut angle = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if seen_token {
                        segments += 1;
                    }
                    seen_token = false;
                    continue;
                }
                _ => {}
            }
        }
        seen_token = true;
    }
    if seen_token {
        segments += 1;
    }
    segments
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_segments(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to the comma separating variants (covers discriminants).
        while let Some(tt) = tokens.get(i) {
            i += 1;
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}
