//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` crate's [`Value`] tree as JSON.
//!
//! Floats are printed with Rust's shortest round-trip formatting
//! (`{}` on `f64` is guaranteed to re-parse to the identical bits), so
//! serialize → deserialize is lossless for every finite `f64`. Non-finite
//! floats serialize as `null` (matching real serde_json) and fail to
//! deserialize into `f64` fields.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// This stand-in never fails to serialize; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// This stand-in never fails to serialize; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an error on malformed JSON or a tree that does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// --- writer -------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            out.push_str(&n.to_string());
        }
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(x) => write_float(*x, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's `{}` for f64 is the shortest string that round-trips to the
    // same bits. Append `.0` to integral floats so they re-parse as
    // Value::Float rather than an integer.
    let s = x.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let len = utf8_len(rest[0]);
                    let chunk = rest
                        .get(..len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error("invalid utf-8 in string".into()))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 7.2e18, 50_000.0, -0.0, 2.5e-5] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn integral_float_stays_float() {
        let json = to_string(&3.0f64).unwrap();
        assert_eq!(json, "3.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<Vec<f64>> = vec![vec![1.5, 2.5], vec![], vec![-3.0]];
        let json = to_string(&v).unwrap();
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\tte".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn options_round_trip() {
        let some: Option<f64> = Some(4.5);
        let none: Option<f64> = None;
        assert_eq!(
            from_str::<Option<f64>>(&to_string(&some).unwrap()).unwrap(),
            some
        );
        assert_eq!(
            from_str::<Option<f64>>(&to_string(&none).unwrap()).unwrap(),
            none
        );
    }

    #[test]
    fn pretty_output_parses() {
        let v = vec![1u64, 2, 3];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<u64> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("1.5 extra").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
